"""Executing query plans through the shared plan-node IR.

A (complete) hypertree decomposition of a query is a query plan (Section 1.1
and Section 6 of the paper): first evaluate, for every decomposition node
``p``, the expression ``E(p) = Π_{χ(p)} ⋈_{h ∈ λ(p)} rel(h)``; the resulting
tree of relations is an acyclic *tree query* which Yannakakis' algorithm then
answers in output-polynomial time.

Both plan shapes -- hypertree plans and the baseline's left-deep join
orders -- are lowered to the IR of :mod:`repro.db.plan_ir` and interpreted
by :func:`execute_plan`, so they run on the identical operator kernels
(columnar whenever the database is columnar) and their work counters are
directly comparable.  :func:`execute_hypertree_plan` and
:func:`naive_join_evaluation` remain as the public entry points and report
the work performed, which is what the Fig. 8 experiments measure.

The execution plane is parallel and memory-bounded:

* ``threads`` (per call, defaulting to the database's knob, defaulting to
  the ``REPRO_DB_THREADS`` environment variable, defaulting to 1) runs the
  per-subtree task DAG of a Yannakakis plan -- per-node expressions, both
  semijoin passes, the join fold -- on a
  :class:`~repro.db.scheduler.TaskScheduler` thread pool; independent
  sibling subtrees execute concurrently and the big numpy kernels release
  the GIL.  ``threads=1`` is the serial oracle path, byte-identical by
  construction; the parallel path is pinned to it by the equivalence suite
  (answers, row order, ``OperatorStats``).
* ``memory_budget_bytes`` (same defaulting chain, env var
  ``REPRO_DB_MEMORY_BUDGET_BYTES``) caps each columnar kernel's transient
  index arrays: the probe/membership kernels of :mod:`repro.db.columnar`
  get a fixed morsel size
  (:func:`repro.db.algebra.chunk_rows_for_budget`) and the join's
  materialisation phase sizes its morsels *adaptively* from the exact
  per-chunk emit counts against the byte budget -- results, emit counts
  and the evaluation-budget stop are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.db.algebra import (
    OperatorStats,
    chunk_rows_for_budget,
    evaluate_node_expression,
    join_all,
    project,
)
from repro.db.database import Database
from repro.db.plan_ir import (
    JoinNode,
    ProjectNode,
    QueryPlanIR,
    ScanNode,
    YannakakisNode,
    hypertree_plan_ir,
    join_input_task_dag,
    join_order_plan_ir,
    scan_order,
    yannakakis_task_dag,
)
from repro.db.relation import Relation
from repro.db.scheduler import TaskScheduler, resolve_threads
from repro.obs.trace import TraceRecorder, obs_enabled, span_context
from repro.db.yannakakis import (
    TreeQuery,
    evaluate,
    evaluate_boolean,
    fold_plan,
    fold_task_functions,
    reduction_task_functions,
)
from repro.decomposition.hypertree import HypertreeDecomposition
from repro.exceptions import DatabaseError
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class ExecutionResult:
    """The outcome of running a query plan.

    ``relation`` is the answer relation (``None`` for Boolean queries);
    ``boolean`` the Boolean answer (``None`` for non-Boolean queries);
    ``stats`` the relational-operator work counters.
    """

    relation: Optional[Relation]
    boolean: Optional[bool]
    stats: OperatorStats

    @property
    def cardinality(self) -> int:
        if self.relation is None:
            return 1 if self.boolean else 0
        return self.relation.cardinality

    def answer_rows(self) -> Optional[list]:
        """The decoded answer rows as a JSON-safe list of lists (``None``
        for Boolean queries), preserving the engine's row order exactly --
        the form the serving plane ships back to clients and the
        equivalence suites compare byte-for-byte."""
        if self.relation is None:
            return None
        return [list(row) for row in self.relation.rows]

    def stats_payload(self) -> Dict[str, object]:
        """A JSON-safe rendering of the work counters: the representation-
        blind :meth:`OperatorStats.snapshot` plus the per-operator counts
        and ``peak_transient_elements``.  Every field is deterministic
        across engines, encodings, chunkings and thread counts, so two
        executions of the same plan against the same data must produce
        equal payloads (the serving plane's determinism contract).  The
        dtype-aware ``peak_transient_bytes`` is deliberately excluded."""
        payload = dict(self.stats.snapshot())
        payload["operations"] = {
            key: self.stats.operations[key]
            for key in sorted(self.stats.operations)
        }
        payload["peak_transient_elements"] = self.stats.peak_transient_elements
        return payload


def build_tree_query(
    query: ConjunctiveQuery,
    database: Database,
    decomposition: HypertreeDecomposition,
    stats: Optional[OperatorStats] = None,
) -> TreeQuery:
    """Materialise ``E(p)`` for every decomposition node and assemble the
    acyclic tree query."""
    bound = database.bind_query(query)
    relations: Dict[object, Relation] = {}
    for node in decomposition.nodes():
        inputs = []
        for edge_name in sorted(node.lambda_edges):
            if edge_name not in bound:
                raise DatabaseError(
                    f"decomposition uses edge {edge_name!r} which is not an atom "
                    f"of query {query.name!r}"
                )
            inputs.append(bound[edge_name])
        projection = sorted(node.chi)
        relations[node.node_id] = evaluate_node_expression(
            inputs, projection, stats=stats
        )
    children = {
        node_id: decomposition.children(node_id)
        for node_id in decomposition.node_ids()
    }
    return TreeQuery(root=decomposition.root, children=children, relations=relations)


def execute_plan(
    plan: QueryPlanIR,
    database: Database,
    budget: Optional[int] = None,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    trace=None,
    trace_id=None,
) -> ExecutionResult:
    """Interpret a plan-node IR tree against ``database``.

    This is the single execution path for every plan shape: atoms are bound
    once (memoised per atom name) and every operator goes through
    :mod:`repro.db.algebra`, which dispatches to the columnar kernels when
    the database is columnar.  ``budget`` caps the total evaluation work
    (tuples read + emitted); exceeding it raises
    :class:`repro.db.algebra.EvaluationBudgetExceeded` -- with ``threads >
    1`` the raise happens in whichever task crosses the budget first, but
    *whether* it happens is scheduling-independent (counters only grow).
    ``threads``/``memory_budget_bytes`` default to the database's knobs;
    see the module docstring.

    ``trace`` (a :class:`repro.obs.trace.TraceRecorder`) records one span
    per plan node -- scans, joins, projections, Yannakakis phases, parallel
    scheduler tasks -- tagged ``trace_id``, with morsel counts and emit
    sizes in the span attrs.  Tracing is a write-only sidecar: answers,
    row order and every ``OperatorStats`` counter are byte-identical with
    it on or off (``REPRO_OBS=1`` forces a throwaway recorder to pin this
    in whole-suite runs).
    """
    threads = resolve_threads(threads, default=getattr(database, "threads", 1))
    if memory_budget_bytes is None:
        memory_budget_bytes = getattr(database, "memory_budget_bytes", None)
    if memory_budget_bytes is not None and memory_budget_bytes <= 0:
        memory_budget_bytes = None
    chunk_rows = chunk_rows_for_budget(memory_budget_bytes)
    scheduler = TaskScheduler(threads)
    if trace is None and obs_enabled():
        trace = TraceRecorder()

    stats = OperatorStats(budget=budget)
    atoms = {atom.name: atom for atom in plan.query.atoms}
    bound: Dict[str, Relation] = {}

    def scan(atom_name: str) -> Relation:
        relation = bound.get(atom_name)
        if relation is None:
            relation = database.bind_atom(atoms[atom_name])
            bound[atom_name] = relation
        return relation

    def fold_inputs(node: JoinNode, relations, needed=None) -> Relation:
        """Join a JoinNode's already-evaluated inputs -- the single fold
        implementation both the serial interpreter and the parallel root
        path use, so the two can never drift apart."""
        order = None
        if node.smallest_first:
            order = sorted(
                range(len(relations)), key=lambda i: relations[i].cardinality
            )
        return join_all(
            relations, stats=stats, order=order, needed=needed,
            chunk_rows=chunk_rows, memory_budget_bytes=memory_budget_bytes,
        )

    def run(node, needed=None) -> Relation:
        if isinstance(node, ScanNode):
            with span_context(
                trace, f"scan:{node.atom_name}", "plan", trace_id
            ) as span:
                relation = scan(node.atom_name)
                span.attrs["rows"] = relation.cardinality
            return relation
        if isinstance(node, JoinNode):
            inputs = [run(child) for child in node.inputs]
            with span_context(
                trace, "join", "plan", trace_id, inputs=len(inputs)
            ) as span:
                relation = fold_inputs(node, inputs, needed)
                span.attrs["rows"] = relation.cardinality
            return relation
        if isinstance(node, ProjectNode):
            # Kernel-level projection pushdown: the join below gathers only
            # the columns this projection (or a later join key) still needs;
            # cardinalities and OperatorStats are unchanged.
            inner = run(node.input, needed=frozenset(node.attributes))
            with span_context(
                trace, f"project:{node.name or 'answer'}", "plan", trace_id
            ) as span:
                relation = project(
                    inner,
                    list(node.attributes),
                    stats=stats,
                    name=node.name,
                    distinct=node.distinct,
                    chunk_rows=chunk_rows,
                )
                span.attrs["rows"] = relation.cardinality
            return relation
        raise DatabaseError(f"unknown plan node: {node!r}")

    wrap = None
    if trace is not None:
        def wrap(key, fn, _trace=trace, _trace_id=trace_id):
            def traced_task() -> None:
                with _trace.span(
                    f"{key[0]}:{key[1]}", category="task", trace_id=_trace_id
                ):
                    fn()
            return traced_task

    root = plan.root
    if isinstance(root, YannakakisNode):
        if scheduler.parallel:
            return _execute_yannakakis_parallel(
                root, scan, run, stats, scheduler, chunk_rows,
                memory_budget_bytes, wrap=wrap,
            )
        relations = {}
        for node_id, expr in root.expressions:
            with span_context(
                trace, f"expr:{node_id}", "yannakakis", trace_id
            ) as span:
                relations[node_id] = run(expr)
                span.attrs["rows"] = relations[node_id].cardinality
        tree = TreeQuery(
            root=root.root,
            children={node_id: kids for node_id, kids in root.children},
            relations=relations,
        )
        if root.boolean:
            answer = evaluate_boolean(
                tree, stats=stats, chunk_rows=chunk_rows,
                trace=trace, trace_id=trace_id,
            )
            return ExecutionResult(relation=None, boolean=answer, stats=stats)
        result = evaluate(
            tree, list(root.output_variables), stats=stats, chunk_rows=chunk_rows,
            memory_budget_bytes=memory_budget_bytes,
            trace=trace, trace_id=trace_id,
        )
        return ExecutionResult(relation=result, boolean=None, stats=stats)

    # A Boolean plan only needs the root cardinality, so the top-level join
    # may drop every column that no longer feeds a join key.
    needed = frozenset() if plan.boolean else None
    if scheduler.parallel:
        result = _run_root_parallel(
            root, scan, run, fold_inputs, stats, scheduler, chunk_rows, needed,
            wrap=wrap,
        )
    else:
        result = run(root, needed=needed)
    if plan.boolean:
        return ExecutionResult(
            relation=None, boolean=result.cardinality > 0, stats=stats
        )
    return ExecutionResult(relation=result, boolean=None, stats=stats)


def _run_root_parallel(
    node, scan, run, fold_inputs, stats, scheduler: TaskScheduler, chunk_rows,
    needed=None, wrap=None,
) -> Relation:
    """Evaluate a Join/Project plan root with the top join's inputs as
    concurrent tasks; the join fold itself is the serial interpreter's
    ``fold_inputs``, so the result (and every counter) matches it."""
    for atom_name in scan_order(node):
        scan(atom_name)  # serial pre-bind: dictionary interning stays ordered
    if isinstance(node, ProjectNode):
        inner = _run_root_parallel(
            node.input, scan, run, fold_inputs, stats, scheduler, chunk_rows,
            needed=frozenset(node.attributes), wrap=wrap,
        )
        return project(
            inner,
            list(node.attributes),
            stats=stats,
            name=node.name,
            distinct=node.distinct,
            chunk_rows=chunk_rows,
        )
    if isinstance(node, JoinNode) and len(node.inputs) > 1:
        results: list = [None] * len(node.inputs)
        specs = join_input_task_dag(node)

        def input_task(index, child):
            def evaluate_input() -> None:
                results[index] = run(child)
            return evaluate_input

        scheduler.run(
            [
                (spec.key, spec.deps, input_task(index, child))
                for index, (spec, child) in enumerate(zip(specs, node.inputs))
            ],
            wrap=wrap,
        )
        return fold_inputs(node, results, needed)
    return run(node, needed=needed)


def _execute_yannakakis_parallel(
    root: YannakakisNode, scan, run, stats, scheduler: TaskScheduler, chunk_rows,
    memory_budget_bytes=None, wrap=None,
) -> ExecutionResult:
    """Run one Yannakakis plan as its per-subtree task DAG.

    Phase one executes expressions and both semijoin passes as one DAG
    (independent sibling subtrees overlap freely); the join fold needs the
    reduced tree's metadata (:func:`repro.db.yannakakis.fold_plan`), so it
    runs as a second DAG.  Every task performs the identical kernel calls
    of the serial path on the identical operands; determinism comes from
    the dependency edges (each relation slot has exactly one writer per
    pass) and the commutative ``OperatorStats`` counters.
    """
    for atom_name in scan_order(root):
        scan(atom_name)  # serial pre-bind: dictionary interning stays ordered
    children = {node_id: tuple(kids) for node_id, kids in root.children}
    # Pre-seed the mapping in canonical order: concurrent writes then
    # preserve this key order, keeping attribute collection deterministic.
    relations: Dict[object, Relation] = {
        node_id: None for node_id, _ in root.expressions
    }
    tree = TreeQuery(root=root.root, children=children, relations=relations)
    specs = yannakakis_task_dag(root)

    def expression_task(node_id, expression):
        def evaluate_expression() -> None:
            relations[node_id] = run(expression)
        return evaluate_expression

    functions = {
        ("expr", node_id): expression_task(node_id, expression)
        for node_id, expression in root.expressions
    }
    functions.update(
        reduction_task_functions(
            tree, relations, stats=stats, full=not root.boolean,
            chunk_rows=chunk_rows,
        )
    )
    reduction_specs = [spec for spec in specs if spec.key[0] != "fold"]
    scheduler.run(
        [(s.key, s.deps, functions[s.key]) for s in reduction_specs], wrap=wrap
    )

    if root.boolean:
        answer = relations[root.root].cardinality > 0
        return ExecutionResult(relation=None, boolean=answer, stats=stats)

    plan = fold_plan(tree, list(root.output_variables))
    folded = dict(relations)
    fold_functions = fold_task_functions(
        tree, folded, plan, stats=stats, chunk_rows=chunk_rows,
        memory_budget_bytes=memory_budget_bytes,
    )
    fold_specs = [spec for spec in specs if spec.key[0] == "fold"]
    scheduler.run(
        [(s.key, s.deps, fold_functions[s.key]) for s in fold_specs], wrap=wrap
    )

    result = project(
        folded[root.root], plan.wanted, stats=stats, name="answer",
        chunk_rows=chunk_rows,
    )
    return ExecutionResult(relation=result, boolean=None, stats=stats)


def execute_hypertree_plan(
    query: ConjunctiveQuery,
    database: Database,
    decomposition: HypertreeDecomposition,
    require_complete: bool = True,
    budget: Optional[int] = None,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    trace=None,
    trace_id=None,
) -> ExecutionResult:
    """Run the query through the hypertree plan.

    The decomposition must be *complete* for the answer to be correct (every
    atom strongly covered); set ``require_complete=False`` only when the
    caller has already ensured semantic completeness by other means (e.g. the
    fresh-variable construction of Section 6).  ``budget`` caps the total
    evaluation work (tuples read + emitted); exceeding it raises
    :class:`repro.db.algebra.EvaluationBudgetExceeded`.
    """
    if require_complete and not decomposition.is_complete():
        raise DatabaseError(
            "the decomposition is not complete; complete it first "
            "(repro.decomposition.complete_decomposition) or plan with the "
            "fresh-variable construction"
        )
    return execute_plan(
        hypertree_plan_ir(query, decomposition),
        database,
        budget=budget,
        threads=threads,
        memory_budget_bytes=memory_budget_bytes,
        trace=trace,
        trace_id=trace_id,
    )


def naive_join_evaluation(
    query: ConjunctiveQuery,
    database: Database,
    order: Optional[Tuple[str, ...]] = None,
    budget: Optional[int] = None,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    trace=None,
    trace_id=None,
) -> ExecutionResult:
    """Evaluate the query by joining all bound atoms in a (given or textual)
    order, with no structural awareness -- the "flat" evaluation a
    quantitative-only engine performs once its optimiser has fixed a join
    order.  Used as the execution backend of the baseline optimiser."""
    return execute_plan(
        join_order_plan_ir(query, order),
        database,
        budget=budget,
        threads=threads,
        memory_budget_bytes=memory_budget_bytes,
        trace=trace,
        trace_id=trace_id,
    )
