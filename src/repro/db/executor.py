"""Executing query plans through the shared plan-node IR.

A (complete) hypertree decomposition of a query is a query plan (Section 1.1
and Section 6 of the paper): first evaluate, for every decomposition node
``p``, the expression ``E(p) = Π_{χ(p)} ⋈_{h ∈ λ(p)} rel(h)``; the resulting
tree of relations is an acyclic *tree query* which Yannakakis' algorithm then
answers in output-polynomial time.

Both plan shapes -- hypertree plans and the baseline's left-deep join
orders -- are lowered to the IR of :mod:`repro.db.plan_ir` and interpreted
by :func:`execute_plan`, so they run on the identical operator kernels
(columnar whenever the database is columnar) and their work counters are
directly comparable.  :func:`execute_hypertree_plan` and
:func:`naive_join_evaluation` remain as the public entry points and report
the work performed, which is what the Fig. 8 experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.db.algebra import (
    OperatorStats,
    evaluate_node_expression,
    join_all,
    project,
)
from repro.db.database import Database
from repro.db.plan_ir import (
    JoinNode,
    ProjectNode,
    QueryPlanIR,
    ScanNode,
    YannakakisNode,
    hypertree_plan_ir,
    join_order_plan_ir,
)
from repro.db.relation import Relation
from repro.db.yannakakis import TreeQuery, evaluate, evaluate_boolean
from repro.decomposition.hypertree import HypertreeDecomposition
from repro.exceptions import DatabaseError
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class ExecutionResult:
    """The outcome of running a query plan.

    ``relation`` is the answer relation (``None`` for Boolean queries);
    ``boolean`` the Boolean answer (``None`` for non-Boolean queries);
    ``stats`` the relational-operator work counters.
    """

    relation: Optional[Relation]
    boolean: Optional[bool]
    stats: OperatorStats

    @property
    def cardinality(self) -> int:
        if self.relation is None:
            return 1 if self.boolean else 0
        return self.relation.cardinality


def build_tree_query(
    query: ConjunctiveQuery,
    database: Database,
    decomposition: HypertreeDecomposition,
    stats: Optional[OperatorStats] = None,
) -> TreeQuery:
    """Materialise ``E(p)`` for every decomposition node and assemble the
    acyclic tree query."""
    bound = database.bind_query(query)
    relations: Dict[object, Relation] = {}
    for node in decomposition.nodes():
        inputs = []
        for edge_name in sorted(node.lambda_edges):
            if edge_name not in bound:
                raise DatabaseError(
                    f"decomposition uses edge {edge_name!r} which is not an atom "
                    f"of query {query.name!r}"
                )
            inputs.append(bound[edge_name])
        projection = sorted(node.chi)
        relations[node.node_id] = evaluate_node_expression(
            inputs, projection, stats=stats
        )
    children = {
        node_id: decomposition.children(node_id)
        for node_id in decomposition.node_ids()
    }
    return TreeQuery(root=decomposition.root, children=children, relations=relations)


def execute_plan(
    plan: QueryPlanIR, database: Database, budget: Optional[int] = None
) -> ExecutionResult:
    """Interpret a plan-node IR tree against ``database``.

    This is the single execution path for every plan shape: atoms are bound
    once (memoised per atom name) and every operator goes through
    :mod:`repro.db.algebra`, which dispatches to the columnar kernels when
    the database is columnar.  ``budget`` caps the total evaluation work
    (tuples read + emitted); exceeding it raises
    :class:`repro.db.algebra.EvaluationBudgetExceeded`.
    """
    stats = OperatorStats(budget=budget)
    atoms = {atom.name: atom for atom in plan.query.atoms}
    bound: Dict[str, Relation] = {}

    def scan(atom_name: str) -> Relation:
        relation = bound.get(atom_name)
        if relation is None:
            relation = database.bind_atom(atoms[atom_name])
            bound[atom_name] = relation
        return relation

    def run(node, needed=None) -> Relation:
        if isinstance(node, ScanNode):
            return scan(node.atom_name)
        if isinstance(node, JoinNode):
            relations = [run(child) for child in node.inputs]
            order = None
            if node.smallest_first:
                order = sorted(
                    range(len(relations)), key=lambda i: relations[i].cardinality
                )
            return join_all(relations, stats=stats, order=order, needed=needed)
        if isinstance(node, ProjectNode):
            # Kernel-level projection pushdown: the join below gathers only
            # the columns this projection (or a later join key) still needs;
            # cardinalities and OperatorStats are unchanged.
            return project(
                run(node.input, needed=frozenset(node.attributes)),
                list(node.attributes),
                stats=stats,
                name=node.name,
                distinct=node.distinct,
            )
        raise DatabaseError(f"unknown plan node: {node!r}")

    root = plan.root
    if isinstance(root, YannakakisNode):
        relations = {node_id: run(expr) for node_id, expr in root.expressions}
        tree = TreeQuery(
            root=root.root,
            children={node_id: kids for node_id, kids in root.children},
            relations=relations,
        )
        if root.boolean:
            answer = evaluate_boolean(tree, stats=stats)
            return ExecutionResult(relation=None, boolean=answer, stats=stats)
        result = evaluate(tree, list(root.output_variables), stats=stats)
        return ExecutionResult(relation=result, boolean=None, stats=stats)

    # A Boolean plan only needs the root cardinality, so the top-level join
    # may drop every column that no longer feeds a join key.
    result = run(root, needed=frozenset() if plan.boolean else None)
    if plan.boolean:
        return ExecutionResult(
            relation=None, boolean=result.cardinality > 0, stats=stats
        )
    return ExecutionResult(relation=result, boolean=None, stats=stats)


def execute_hypertree_plan(
    query: ConjunctiveQuery,
    database: Database,
    decomposition: HypertreeDecomposition,
    require_complete: bool = True,
    budget: Optional[int] = None,
) -> ExecutionResult:
    """Run the query through the hypertree plan.

    The decomposition must be *complete* for the answer to be correct (every
    atom strongly covered); set ``require_complete=False`` only when the
    caller has already ensured semantic completeness by other means (e.g. the
    fresh-variable construction of Section 6).  ``budget`` caps the total
    evaluation work (tuples read + emitted); exceeding it raises
    :class:`repro.db.algebra.EvaluationBudgetExceeded`.
    """
    if require_complete and not decomposition.is_complete():
        raise DatabaseError(
            "the decomposition is not complete; complete it first "
            "(repro.decomposition.complete_decomposition) or plan with the "
            "fresh-variable construction"
        )
    return execute_plan(hypertree_plan_ir(query, decomposition), database, budget=budget)


def naive_join_evaluation(
    query: ConjunctiveQuery,
    database: Database,
    order: Optional[Tuple[str, ...]] = None,
    budget: Optional[int] = None,
) -> ExecutionResult:
    """Evaluate the query by joining all bound atoms in a (given or textual)
    order, with no structural awareness -- the "flat" evaluation a
    quantitative-only engine performs once its optimiser has fixed a join
    order.  Used as the execution backend of the baseline optimiser."""
    return execute_plan(join_order_plan_ir(query, order), database, budget=budget)
