"""Executing hypertree query plans.

A (complete) hypertree decomposition of a query is a query plan (Section 1.1
and Section 6 of the paper): first evaluate, for every decomposition node
``p``, the expression ``E(p) = Π_{χ(p)} ⋈_{h ∈ λ(p)} rel(h)``; the resulting
tree of relations is an acyclic *tree query* which Yannakakis' algorithm then
answers in output-polynomial time.

:func:`execute_hypertree_plan` carries out both phases against an in-memory
:class:`~repro.db.database.Database` and reports the work performed, which is
what the Fig. 8 experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.db.algebra import OperatorStats, evaluate_node_expression
from repro.db.database import Database
from repro.db.relation import Relation
from repro.db.yannakakis import TreeQuery, evaluate, evaluate_boolean
from repro.decomposition.hypertree import HypertreeDecomposition
from repro.exceptions import DatabaseError
from repro.query.conjunctive import ConjunctiveQuery, is_fresh_variable


@dataclass
class ExecutionResult:
    """The outcome of running a query plan.

    ``relation`` is the answer relation (``None`` for Boolean queries);
    ``boolean`` the Boolean answer (``None`` for non-Boolean queries);
    ``stats`` the relational-operator work counters.
    """

    relation: Optional[Relation]
    boolean: Optional[bool]
    stats: OperatorStats

    @property
    def cardinality(self) -> int:
        if self.relation is None:
            return 1 if self.boolean else 0
        return self.relation.cardinality


def build_tree_query(
    query: ConjunctiveQuery,
    database: Database,
    decomposition: HypertreeDecomposition,
    stats: Optional[OperatorStats] = None,
) -> TreeQuery:
    """Materialise ``E(p)`` for every decomposition node and assemble the
    acyclic tree query."""
    bound = database.bind_query(query)
    relations: Dict[object, Relation] = {}
    for node in decomposition.nodes():
        inputs = []
        for edge_name in sorted(node.lambda_edges):
            if edge_name not in bound:
                raise DatabaseError(
                    f"decomposition uses edge {edge_name!r} which is not an atom "
                    f"of query {query.name!r}"
                )
            inputs.append(bound[edge_name])
        projection = sorted(node.chi)
        relations[node.node_id] = evaluate_node_expression(
            inputs, projection, stats=stats
        )
    children = {
        node_id: decomposition.children(node_id)
        for node_id in decomposition.node_ids()
    }
    return TreeQuery(root=decomposition.root, children=children, relations=relations)


def execute_hypertree_plan(
    query: ConjunctiveQuery,
    database: Database,
    decomposition: HypertreeDecomposition,
    require_complete: bool = True,
    budget: Optional[int] = None,
) -> ExecutionResult:
    """Run the query through the hypertree plan.

    The decomposition must be *complete* for the answer to be correct (every
    atom strongly covered); set ``require_complete=False`` only when the
    caller has already ensured semantic completeness by other means (e.g. the
    fresh-variable construction of Section 6).  ``budget`` caps the total
    evaluation work (tuples read + emitted); exceeding it raises
    :class:`repro.db.algebra.EvaluationBudgetExceeded`.
    """
    if require_complete and not decomposition.is_complete():
        raise DatabaseError(
            "the decomposition is not complete; complete it first "
            "(repro.decomposition.complete_decomposition) or plan with the "
            "fresh-variable construction"
        )
    stats = OperatorStats(budget=budget)
    tree = build_tree_query(query, database, decomposition, stats=stats)
    if query.is_boolean:
        answer = evaluate_boolean(tree, stats=stats)
        return ExecutionResult(relation=None, boolean=answer, stats=stats)
    result = evaluate(tree, list(query.output_variables), stats=stats)
    return ExecutionResult(relation=result, boolean=None, stats=stats)


def naive_join_evaluation(
    query: ConjunctiveQuery,
    database: Database,
    order: Optional[Tuple[str, ...]] = None,
    budget: Optional[int] = None,
) -> ExecutionResult:
    """Evaluate the query by joining all bound atoms in a (given or textual)
    order, with no structural awareness -- the "flat" evaluation a
    quantitative-only engine performs once its optimiser has fixed a join
    order.  Used as the execution backend of the baseline optimiser."""
    from repro.db.algebra import join_all, project

    stats = OperatorStats(budget=budget)
    bound = database.bind_query(query)
    names = list(order) if order is not None else sorted(bound)
    unknown = [n for n in names if n not in bound]
    if unknown:
        raise DatabaseError(f"unknown atoms in join order: {unknown}")
    if set(names) != set(bound):
        raise DatabaseError("join order must mention every atom exactly once")
    relations = [bound[n] for n in names]
    joined = join_all(relations, stats=stats)
    if query.is_boolean:
        return ExecutionResult(relation=None, boolean=joined.cardinality > 0, stats=stats)
    wanted = [v for v in query.output_variables if not is_fresh_variable(v)]
    result = project(joined, wanted, stats=stats, name="answer")
    return ExecutionResult(relation=result, boolean=None, stats=stats)
