"""Long-lived serving daemon: a socket front-end for the worker pool.

:class:`~repro.db.serving.ServingPool` (PR 7/8) made serving
process-parallel and crash-tolerant, but every client still had to live
in the pool's own process.  This module puts the pool behind a
Unix-domain or TCP socket so the serving plane survives its *clients*
too: a long-lived :class:`ServingDaemon` owns one supervised pool plus a
background statistics-refresh loop, and any number of processes talk to
it with :class:`DaemonClient` -- ``repro db daemon <store>`` runs it,
``repro db serve --daemon <addr>`` drives the QPS/oracle harness through
it.

Wire framing
------------
Every message is one *frame*: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  Requests carry ``format`` /
``version`` markers (``"repro-daemon"`` / 1 -- same policy as the
serving payloads: reject what you do not understand, never guess), a
client-chosen ``id`` echoed verbatim in the response, and a ``kind``:

* ``"execute"`` -- serve one pickle-free ``SERVING_FORMAT`` v1 payload
  (the exact objects :func:`~repro.db.serving.prewarm` returns) through
  the pool; the response carries the worker's response dict, byte-
  identical (provenance-stripped) to the serial
  :func:`~repro.db.serving.execute_payload` oracle.
* ``"health"`` -- liveness probe: ``status`` (``ready`` / ``degraded`` /
  ``draining``), worker/restart/degradation counters, refresh
  generation, connection and request counters.  Orchestrators poll this.
* ``"plans"`` -- the daemon's current prewarmed payload set and its
  refresh ``generation`` (clients fetch ready-to-execute payloads
  instead of planning themselves).
* ``"refresh"`` -- force one statistics refresh now (re-analyze +
  re-plan, the timer loop's body) and report the new generation.
* ``"shutdown"`` -- ask the daemon to drain and exit (what SIGTERM does,
  reachable over the wire for orchestrators without signal access).

Responses echo ``id`` and are either ``kind: "response"`` (with
kind-specific fields) or ``kind: "error"`` with a machine-readable
``code`` (``bad_frame``, ``bad_request``, ``admission_rejected``,
``degraded``, ``shutting_down``, ``refresh_unavailable``,
``refresh_failed``, ``internal``) and a human-readable ``error``.
Backpressure and degradation are *structured error frames on a healthy
connection*, never a dropped connection.

Fault matrix (the design center)
--------------------------------
==========================  =============================================
client fault / event        daemon behaviour
==========================  =============================================
disconnect mid-request      connection dropped; its in-flight admission
                            slices released via the pool's ``abandon``
                            (the ``collect(timeout=)`` expiry machinery);
                            every other connection unaffected
garbage / oversized frame   one ``bad_frame`` error frame (best effort),
                            then the connection is dropped
stall mid-frame             dropped after ``io_timeout_seconds`` (a
                            *started* frame must finish in time; an idle
                            connection may stay silent forever)
``AdmissionRejected``       ``admission_rejected`` error frame; the
                            connection stays open for a retry
pool degraded               ``degraded`` error frame per execute; health
                            reports ``status: "degraded"`` + the reason
SIGTERM / SIGINT /          drain-then-exit: stop accepting, finish or
``shutdown`` request        deadline-out in-flight work (bounded by
                            ``drain_timeout_seconds``), close the pool
                            (no orphan workers), exit 0
statistics refresh          runs concurrently on its own thread; the
                            refreshed payload set is hot-swapped
                            atomically between requests -- no serving gap
==========================  =============================================

Client-side faults are scriptable through the same
``REPRO_SERVE_FAULTS`` plan language as worker faults
(:mod:`repro.db.faults`, kinds ``client_disconnect`` /
``partial_frame`` / ``stalled_reader``), so the whole matrix replays
deterministically in tests and CI chaos smokes.

Threading model
---------------
The pool is single-owner: only the *dispatcher* thread touches it
(``submit`` / ``try_collect`` / ``abandon`` / ``service``).  Each
connection gets a reader thread that decodes frames and forwards
``execute`` commands to the dispatcher over a queue; ``health`` and
``plans`` are answered inline from counters safe to read concurrently;
``refresh`` runs on the dedicated refresh thread (planning may take a
while and must not stall serving).  Responses go out under a
per-connection send lock, so dispatcher and reader never interleave
bytes on one socket.
"""

from __future__ import annotations

import json
import logging
import os
import queue
import signal
import socket
import struct
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.db.faults import FaultPlan, FaultRule
from repro.db.serving import (
    AdmissionRejected,
    ServingError,
    ServingPool,
    prewarm,
)
from repro.exceptions import DatabaseError
from repro.obs.export import write_chrome_trace
from repro.obs.trace import TraceRecorder

_DAEMON_LOG = logging.getLogger("repro.daemon")

#: Wire-format marker + version carried by every daemon frame.
DAEMON_FORMAT = "repro-daemon"
DAEMON_VERSION = 1

#: Frame header: one 4-byte big-endian unsigned payload length.
_HEADER = struct.Struct(">I")

#: Reject frames larger than this (a garbage header decoding to a huge
#: length must not make the daemon allocate gigabytes).
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Request kinds the daemon understands.
REQUEST_KINDS = ("execute", "health", "metrics", "plans", "refresh", "shutdown")

#: Machine-readable error codes of ``kind: "error"`` frames.
ERROR_CODES = (
    "bad_frame",
    "bad_request",
    "admission_rejected",
    "degraded",
    "shutting_down",
    "refresh_unavailable",
    "refresh_failed",
    "internal",
)

#: Socket-level timeouts: the accept/read tick (how fast threads notice
#: shutdown) and the send timeout (a stalled response write drops the
#: connection rather than wedging the sender).
_TICK_SECONDS = 0.2
_SEND_TIMEOUT_SECONDS = 30.0


class DaemonError(DatabaseError):
    """Base error of the daemon transport."""


class DaemonProtocolError(DaemonError):
    """The peer spoke something that is not a valid daemon frame."""


class DaemonDisconnected(DaemonError):
    """The connection closed before a response arrived (peer died,
    daemon dropped us, or an injected connection fault fired)."""


class DaemonRequestError(DaemonError):
    """The daemon answered with a structured error frame."""

    def __init__(self, frame: Mapping) -> None:
        self.code = str(frame.get("code", "internal"))
        self.frame = dict(frame)
        super().__init__(f"[{self.code}] {frame.get('error', 'request failed')}")


# ----------------------------------------------------------------------
# Addresses.
# ----------------------------------------------------------------------


def parse_address(text: str) -> Tuple[str, object]:
    """Parse an address spec into ``("unix", path)`` or
    ``("tcp", (host, port))``.

    ``unix:/run/repro.sock`` and any spec containing a ``/`` are Unix
    sockets; ``tcp:host:port`` and plain ``host:port`` are TCP.
    """
    text = str(text).strip()
    if not text:
        raise DaemonError("empty daemon address")
    if text.startswith("unix:"):
        return ("unix", text[len("unix:"):])
    if text.startswith("tcp:"):
        text = text[len("tcp:"):]
    elif "/" in text or os.sep in text:
        return ("unix", text)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise DaemonError(
            f"cannot parse daemon address {text!r}: expected 'unix:PATH', "
            "a filesystem path, or '[tcp:]HOST:PORT'"
        )
    try:
        return ("tcp", (host, int(port)))
    except ValueError:
        raise DaemonError(
            f"cannot parse daemon address {text!r}: port {port!r} is not "
            "an integer"
        ) from None


def format_address(address: Tuple[str, object]) -> str:
    family, spec = address
    if family == "unix":
        return f"unix:{spec}"
    host, port = spec  # type: ignore[misc]
    return f"tcp:{host}:{port}"


def _connect(address: Tuple[str, object], timeout: float) -> socket.socket:
    family, spec = address
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(spec if family == "unix" else tuple(spec))
    except OSError as exc:
        sock.close()
        raise DaemonDisconnected(
            f"cannot connect to daemon at {format_address(address)}: {exc}"
        ) from exc
    return sock


# ----------------------------------------------------------------------
# Framing.
# ----------------------------------------------------------------------


def encode_frame(frame: Mapping, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Length-prefixed UTF-8 JSON bytes for one frame."""
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise DaemonProtocolError(
            f"frame of {len(body):,} bytes exceeds the {max_frame_bytes:,}-"
            "byte limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> Dict[str, Any]:
    """The JSON object inside one frame body (header already stripped)."""
    try:
        frame = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise DaemonProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise DaemonProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    if frame.get("format") != DAEMON_FORMAT or frame.get("version") != DAEMON_VERSION:
        raise DaemonProtocolError(
            f"frame is not {DAEMON_FORMAT} v{DAEMON_VERSION}: "
            f"format={frame.get('format')!r} version={frame.get('version')!r}"
        )
    return frame


def _base_frame(kind: str, frame_id) -> Dict[str, Any]:
    return {
        "format": DAEMON_FORMAT,
        "version": DAEMON_VERSION,
        "id": frame_id,
        "kind": kind,
    }


def _error_frame(frame_id, code: str, message: str) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    frame = _base_frame("error", frame_id)
    frame["code"] = code
    frame["error"] = message
    return frame


def _recv_some(sock: socket.socket) -> Optional[bytes]:
    """One recv with the tick timeout: bytes, ``b""`` on EOF, ``None``
    on a tick with no data."""
    try:
        return sock.recv(65536)
    except socket.timeout:
        return None
    except OSError:
        return b""  # reset/closed under us: same as EOF for the reader


#: Sentinel :meth:`_FrameReader.read` returns when the daemon is
#: draining and the peer is at a frame boundary -- distinct from ``None``
#: (peer EOF), because a drain must NOT abandon the peer's in-flight
#: requests the way a real hangup does.
_STOPPED = object()


class _FrameReader:
    """Incremental frame decoder over a socket with the daemon's
    idle-vs-stalled policy: a connection may sit idle between frames
    forever, but once the first byte of a frame arrives the rest must
    follow within ``io_timeout`` seconds."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_frame_bytes: int,
        io_timeout: float,
        stop_event: threading.Event,
    ) -> None:
        self._sock = sock
        self._max = max_frame_bytes
        self._io_timeout = io_timeout
        self._stop = stop_event
        self._buffer = b""

    def read(self):
        """The next frame; ``None`` on clean peer EOF, :data:`_STOPPED`
        when the stop event fired at a frame boundary.  Raises
        :class:`DaemonProtocolError` on garbage and
        :class:`DaemonDisconnected` on mid-frame EOF or stall."""
        started_at = None if not self._buffer else time.monotonic()
        while True:
            frame = self._try_decode()
            if frame is not None:
                return frame
            if self._stop.is_set() and not self._buffer:
                return _STOPPED
            chunk = _recv_some(self._sock)
            if chunk is None:  # tick: no data
                if self._buffer:
                    if started_at is None:
                        started_at = time.monotonic()
                    elif time.monotonic() - started_at > self._io_timeout:
                        raise DaemonDisconnected(
                            f"peer stalled mid-frame for more than "
                            f"{self._io_timeout}s"
                        )
                continue
            if chunk == b"":
                if self._buffer:
                    raise DaemonDisconnected("peer closed mid-frame")
                return None
            if not self._buffer:
                started_at = time.monotonic()
            self._buffer += chunk

    def _try_decode(self) -> Optional[Dict[str, Any]]:
        if len(self._buffer) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack(self._buffer[: _HEADER.size])
        if length == 0 or length > self._max:
            raise DaemonProtocolError(
                f"frame header declares {length:,} bytes "
                f"(limit {self._max:,}): not a daemon frame"
            )
        if len(self._buffer) < _HEADER.size + length:
            return None
        body = self._buffer[_HEADER.size : _HEADER.size + length]
        self._buffer = self._buffer[_HEADER.size + length :]
        return decode_frame(body)


# ----------------------------------------------------------------------
# Server.
# ----------------------------------------------------------------------


class _Connection:
    """One accepted client socket: a reader thread plus a locked sender."""

    def __init__(self, daemon: "ServingDaemon", sock: socket.socket, conn_id: int):
        self.daemon = daemon
        self.sock = sock
        self.conn_id = conn_id
        self.send_lock = threading.Lock()
        self.closed = threading.Event()
        self.thread = threading.Thread(
            target=self._run, name=f"repro-daemon-conn-{conn_id}", daemon=True
        )

    def start(self) -> None:
        self.sock.settimeout(_TICK_SECONDS)
        self.thread.start()

    def send(self, frame: Mapping) -> bool:
        """Serialise + write one frame; ``False`` (never raises) when the
        peer is gone or stalls past the send timeout -- the caller then
        treats the connection as hung up."""
        try:
            data = encode_frame(frame, self.daemon.max_frame_bytes)
        except DaemonProtocolError:  # pragma: no cover - response too big
            data = encode_frame(
                _error_frame(frame.get("id"), "internal", "response too large")
            )
        with self.send_lock:
            if self.closed.is_set():
                return False
            try:
                self.sock.settimeout(_SEND_TIMEOUT_SECONDS)
                self.sock.sendall(data)
                return True
            except OSError:
                return False
            finally:
                try:
                    self.sock.settimeout(_TICK_SECONDS)
                except OSError:  # pragma: no cover - socket torn down
                    pass

    def close(self) -> None:
        if self.closed.is_set():
            return
        self.closed.set()
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass

    # -- reader thread -------------------------------------------------
    def _run(self) -> None:
        daemon = self.daemon
        reader = _FrameReader(
            self.sock,
            max_frame_bytes=daemon.max_frame_bytes,
            io_timeout=daemon.io_timeout_seconds,
            stop_event=daemon._stop_event,
        )
        dropped = False
        draining = False
        try:
            while not self.closed.is_set():
                try:
                    frame = reader.read()
                except DaemonProtocolError as exc:
                    # Garbage: one best-effort error frame, then drop.
                    self.send(_error_frame(None, "bad_frame", str(exc)))
                    dropped = True
                    break
                except DaemonDisconnected:
                    dropped = True
                    break
                if frame is _STOPPED:
                    # Drain: stop reading, but the peer's in-flight
                    # requests still complete -- no hangup, the
                    # dispatcher keeps delivering on this socket.
                    draining = True
                    break
                if frame is None:  # the peer closed cleanly
                    break
                self._handle(frame)
        except Exception:  # pragma: no cover - reader must never kill the daemon
            dropped = True
        finally:
            if dropped:
                daemon.stats.bump("connections_dropped")
            if not draining:
                daemon._hangup(self)

    def _handle(self, frame: Mapping) -> None:
        daemon = self.daemon
        frame_id = frame.get("id")
        kind = frame.get("kind")
        if kind not in REQUEST_KINDS:
            self.send(
                _error_frame(
                    frame_id,
                    "bad_request",
                    f"unknown request kind {kind!r}; expected one of "
                    f"{', '.join(REQUEST_KINDS)}",
                )
            )
            return
        if kind == "execute":
            daemon._commands.put(("execute", self, dict(frame)))
        elif kind == "health":
            self.send(daemon._health_frame(frame_id))
        elif kind == "metrics":
            # Answered inline from the reader thread, like health: every
            # instrument is lock-protected and the pool's depth properties
            # read plain container lengths.
            self.send(daemon._metrics_frame(frame_id))
        elif kind == "plans":
            self.send(daemon._plans_frame(frame_id))
        elif kind == "refresh":
            daemon._refresh_requests.put((self, frame_id))
        elif kind == "shutdown":
            self.send(dict(_base_frame("response", frame_id), draining=True))
            daemon.request_shutdown()


class _Stats:
    """Monotonic daemon counters (reader threads bump, health reads)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {
            "connections_accepted": 0,
            "connections_dropped": 0,
            "requests_served": 0,
            "error_frames": 0,
            "admission_rejected": 0,
            "abandoned_requests": 0,
            "refreshes": 0,
            "refresh_errors": 0,
        }

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[name] += by

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


class ServingDaemon:
    """The long-lived serving front-end; see the module docstring for
    the wire protocol and the fault matrix.

    Parameters mirror :class:`~repro.db.serving.ServingPool` where they
    are forwarded verbatim (``workers``, budgets, restart/deadline
    knobs).  ``queries`` (with ``k_values``/``answer``) enables the
    planning side: the ``plans`` request kind and the statistics-refresh
    loop (every ``refresh_seconds``, plus on-demand ``refresh``
    requests).  Without queries the daemon is a pure executor for
    client-supplied payloads.

    ``trace_out`` names a file: the daemon then attaches a
    :class:`~repro.obs.trace.TraceRecorder` to its pool (per-request
    admission/queue/attempt spans plus the kernel spans workers ship
    back) and exports everything as Chrome trace-event JSON --
    loadable at https://ui.perfetto.dev -- when the drain completes.
    """

    def __init__(
        self,
        store_path,
        address,
        *,
        workers: int = 2,
        queries: Sequence = (),
        k_values: Sequence[int] = (2, 3),
        answer: str = "digest",
        refresh_seconds: Optional[float] = None,
        io_timeout_seconds: float = 10.0,
        drain_timeout_seconds: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        plan_cache=None,
        trace_out=None,
        **pool_options,
    ) -> None:
        self.store_path = Path(store_path)
        self.address = parse_address(address) if isinstance(address, str) else address
        self.workers = int(workers)
        self.queries = list(queries)
        self.k_values = tuple(int(k) for k in k_values)
        self.answer = answer
        self.refresh_seconds = refresh_seconds
        self.io_timeout_seconds = float(io_timeout_seconds)
        self.drain_timeout_seconds = float(drain_timeout_seconds)
        self.max_frame_bytes = int(max_frame_bytes)
        self.plan_cache = plan_cache
        self.trace_out = Path(trace_out) if trace_out else None
        # The pool records admission/queue/attempt spans (plus the kernel
        # spans workers ship back) into this recorder; _finish() exports
        # it as Chrome trace-event JSON once the drain completes.
        self._trace_recorder = TraceRecorder() if trace_out else None
        self.pool_options = dict(pool_options)
        self.stats = _Stats()
        self.started_at: Optional[float] = None
        self.exit_code: Optional[int] = None

        self._pool: Optional[ServingPool] = None
        self._planning_db = None
        self._listener: Optional[socket.socket] = None
        self._connections: Dict[int, _Connection] = {}
        self._connections_lock = threading.Lock()
        self._next_conn_id = 0
        self._commands: "queue.Queue" = queue.Queue()
        self._refresh_requests: "queue.Queue" = queue.Queue()
        self._payloads: List[Dict[str, Any]] = []
        self._payload_lock = threading.Lock()
        self._generation = 0
        self._stop_event = threading.Event()
        self._finished = threading.Event()
        self._threads: List[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServingDaemon":
        """Bind, prewarm, spawn the pool and all service threads.  After
        this returns the daemon is serving; :attr:`address` carries the
        actually-bound address (TCP port 0 resolves here)."""
        if self._pool is not None:
            raise DaemonError("daemon already started")
        # Fork the workers *before* spawning our own service threads:
        # forking a single-threaded process is the safe order.
        self._pool = ServingPool(self.store_path, workers=self.workers,
                                 trace=self._trace_recorder,
                                 **self.pool_options)
        try:
            if self.queries:
                from repro.db.database import Database

                self._planning_db = Database.open(self.store_path)
                self._refresh_payloads(analyze=False)  # stats are fresh at save
            self._listener = self._bind()
        except BaseException:
            self._pool.close()
            raise
        self.started_at = time.monotonic()
        for name, target in (
            ("repro-daemon-accept", self._accept_loop),
            ("repro-daemon-dispatch", self._dispatch_loop),
            ("repro-daemon-refresh", self._refresh_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def _bind(self) -> socket.socket:
        family, spec = self.address
        if family == "unix":
            path = Path(str(spec))
            if path.exists() and path.is_socket():
                path.unlink()  # stale socket from a dead daemon
            path.parent.mkdir(parents=True, exist_ok=True)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(str(path))
        else:
            host, port = spec  # type: ignore[misc]
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, int(port)))
            self.address = ("tcp", listener.getsockname()[:2])
        listener.listen(64)
        listener.settimeout(_TICK_SECONDS)
        return listener

    def request_shutdown(self) -> None:
        """Begin drain-then-exit (idempotent, signal-safe): stop
        accepting, let in-flight work finish or deadline out, then close
        everything.  Returns immediately; :meth:`wait` blocks until the
        drain completes."""
        self._stop_event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._finished.wait(timeout)

    def shutdown(self, *, drain: bool = True) -> int:
        """Drain (unless ``drain=False``, which abandons in-flight work
        immediately) and tear everything down.  Returns the exit code
        (0 = clean)."""
        if not drain:
            self.drain_timeout_seconds = 0.0
        self.request_shutdown()
        return self._finish()

    def serve_forever(self, handle_signals: bool = True) -> int:
        """``start()`` (if not already started) + block until
        SIGTERM/SIGINT (or a ``shutdown`` request) triggers the drain;
        returns the exit code for ``sys.exit``.  The CLI entry point."""
        if self._pool is None:
            self.start()
        if handle_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, lambda *_: self.request_shutdown())
        while not self._stop_event.wait(_TICK_SECONDS):
            pass  # polling wait: robust to signal delivery edge cases
        return self._finish()

    def _finish(self) -> int:
        """Tear-down, run by whichever thread called shutdown/serve_forever:
        close the listener, join the service threads (the dispatcher drains
        first), close connections and the pool, unlink the socket file."""
        if self._finished.is_set():
            return self.exit_code if self.exit_code is not None else 0
        self._stop_event.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        join_deadline = time.monotonic() + self.drain_timeout_seconds + 10.0
        for thread in self._threads:
            thread.join(timeout=max(0.1, join_deadline - time.monotonic()))
        with self._connections_lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for connection in connections:
            connection.close()
        if self._pool is not None:
            self._pool.close()
        if self.address[0] == "unix":
            try:
                Path(str(self.address[1])).unlink()
            except OSError:
                pass
        if self.trace_out is not None and self._trace_recorder is not None:
            try:
                events = write_chrome_trace(self.trace_out, self._trace_recorder)
                _DAEMON_LOG.info(
                    "wrote %d trace events to %s", events, self.trace_out
                )
            except OSError:  # export must never block the drain
                _DAEMON_LOG.exception("trace export to %s failed", self.trace_out)
        stuck = [t for t in self._threads if t.is_alive()]
        self.exit_code = 1 if stuck else 0
        self._finished.set()
        return self.exit_code

    def __enter__(self) -> "ServingDaemon":
        return self if self._pool is not None else self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- accept loop ---------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stop_event.is_set():
            try:
                sock, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed: shutting down
                break
            if self._stop_event.is_set():
                sock.close()
                break
            with self._connections_lock:
                self._next_conn_id += 1
                connection = _Connection(self, sock, self._next_conn_id)
                self._connections[connection.conn_id] = connection
            self.stats.bump("connections_accepted")
            connection.start()

    def _hangup(self, connection: _Connection) -> None:
        """A connection's reader exited (EOF, garbage, stall): tell the
        dispatcher to abandon its in-flight requests, then close."""
        with self._connections_lock:
            self._connections.pop(connection.conn_id, None)
        self._commands.put(("hangup", connection, None))
        connection.close()

    # -- dispatcher (the only thread that touches the pool) ------------
    def _dispatch_loop(self) -> None:
        pool = self._pool
        # request_id -> (connection, frame_id, submit time); the third
        # slot feeds the request_latency_seconds histogram on collect.
        outstanding: Dict[int, Tuple[_Connection, Any, float]] = {}
        by_conn: Dict[int, set] = {}
        drain_deadline = None
        while True:
            stopping = self._stop_event.is_set()
            if stopping and drain_deadline is None:
                drain_deadline = time.monotonic() + self.drain_timeout_seconds
            if stopping and (
                not outstanding or time.monotonic() > drain_deadline
            ):
                break
            command = None
            if outstanding:
                try:
                    command = self._commands.get_nowait()
                except queue.Empty:
                    # Let the pool's supervisor advance (crash recovery,
                    # deadline firing) while we idle between commands.
                    pool.service(0.05)
            else:
                try:
                    command = self._commands.get(timeout=_TICK_SECONDS)
                except queue.Empty:
                    pool.service(0.0)
            if command is not None:
                self._handle_command(command, outstanding, by_conn)
                # Drain whatever else queued up before sweeping results.
                while True:
                    try:
                        command = self._commands.get_nowait()
                    except queue.Empty:
                        break
                    self._handle_command(command, outstanding, by_conn)
            self._sweep(outstanding, by_conn)
        # Drain over (or timed out): everything still in flight is
        # abandoned and answered with a structured error.
        for request_id, (connection, frame_id, _started) in outstanding.items():
            try:
                pool.abandon(request_id)
            except ServingError:  # pragma: no cover - broken pool
                pass
            self.stats.bump("abandoned_requests")
            connection.send(
                _error_frame(
                    frame_id,
                    "shutting_down",
                    "daemon drained before this request completed",
                )
            )
        # ...and commands that raced the drain get an answer, not silence.
        while True:
            try:
                action, connection, frame = self._commands.get_nowait()
            except queue.Empty:
                break
            if action == "execute":
                self._send_error(
                    connection, frame.get("id"), "shutting_down",
                    "daemon is draining; no new requests",
                )

    def _handle_command(self, command, outstanding, by_conn) -> None:
        pool = self._pool
        action, connection, frame = command
        if action == "hangup":
            for request_id in sorted(by_conn.pop(connection.conn_id, ())):
                outstanding.pop(request_id, None)
                try:
                    pool.abandon(request_id)
                except ServingError:  # pragma: no cover - broken pool
                    pass
                self.stats.bump("abandoned_requests")
            return
        frame_id = frame.get("id")
        if self._stop_event.is_set():
            self._send_error(
                connection, frame_id, "shutting_down",
                "daemon is draining; no new requests",
            )
            return
        payload = frame.get("payload")
        try:
            request_id = pool.submit(payload)
        except AdmissionRejected as exc:
            self.stats.bump("admission_rejected")
            self._send_error(connection, frame_id, "admission_rejected", str(exc))
            return
        except ServingError as exc:
            code = "degraded" if pool.degraded else "internal"
            self._send_error(connection, frame_id, code, str(exc))
            return
        except DatabaseError as exc:
            self._send_error(connection, frame_id, "bad_request", str(exc))
            return
        outstanding[request_id] = (connection, frame_id, time.monotonic())
        by_conn.setdefault(connection.conn_id, set()).add(request_id)

    def _sweep(self, outstanding, by_conn) -> None:
        pool = self._pool
        for request_id in sorted(outstanding):
            try:
                response = pool.try_collect(request_id)
            except ServingError as exc:
                connection, frame_id, _started = outstanding.pop(request_id)
                by_conn.get(connection.conn_id, set()).discard(request_id)
                self._send_error(connection, frame_id, "internal", str(exc))
                continue
            if response is None:
                continue
            connection, frame_id, started = outstanding.pop(request_id)
            by_conn.get(connection.conn_id, set()).discard(request_id)
            pool.metrics.histogram("request_latency_seconds").observe(
                time.monotonic() - started
            )
            reply = dict(_base_frame("response", frame_id), response=response)
            if connection.send(reply):
                self.stats.bump("requests_served")
            # A failed send surfaces as the connection's own hangup.

    def _send_error(self, connection, frame_id, code: str, message: str) -> None:
        self.stats.bump("error_frames")
        connection.send(_error_frame(frame_id, code, message))

    # -- inline request kinds ------------------------------------------
    def _health_frame(self, frame_id) -> Dict[str, Any]:
        pool = self._pool
        degraded = pool.degraded
        if self._stop_event.is_set():
            status = "draining"
        elif degraded:
            status = "degraded"
        else:
            status = "ready"
        frame = _base_frame("health", frame_id)
        frame.update(
            status=status,
            store=str(self.store_path),
            workers=self.workers,
            worker_pids=sorted(
                report["pid"] for report in dict(pool.worker_reports).values()
            ),
            restarts=pool.restarts,
            degraded=degraded,
            queue_depth=pool.queue_depth,
            inflight=pool.inflight_count,
            pending=pool.pending_count,
            generation=self._generation,
            refresh_seconds=self.refresh_seconds,
            uptime_seconds=(
                round(time.monotonic() - self.started_at, 3)
                if self.started_at is not None
                else 0.0
            ),
            counters=self.stats.snapshot(),
            pid=os.getpid(),
        )
        return frame

    def _metrics_frame(self, frame_id) -> Dict[str, Any]:
        """The daemon's full metrics snapshot: transport counters, pool
        depth gauges, request-latency quantiles (p50/p95/p99 over the
        fixed exponential buckets) and the raw registry payload --
        everything ``repro db metrics`` renders."""
        pool = self._pool
        frame = _base_frame("metrics", frame_id)
        frame.update(
            generation=self._generation,
            uptime_seconds=(
                round(time.monotonic() - self.started_at, 3)
                if self.started_at is not None
                else 0.0
            ),
            queue_depth=pool.queue_depth,
            inflight=pool.inflight_count,
            pending=pool.pending_count,
            restarts=pool.restarts,
            degraded=pool.degraded,
            counters=self.stats.snapshot(),
            latency=pool.metrics.histogram("request_latency_seconds").quantiles(),
            metrics=pool.metrics.to_payload(),
            pid=os.getpid(),
        )
        return frame

    def _plans_frame(self, frame_id) -> Dict[str, Any]:
        with self._payload_lock:
            payloads = list(self._payloads)
            generation = self._generation
        frame = _base_frame("plans", frame_id)
        frame.update(generation=generation, payloads=payloads)
        return frame

    # -- statistics refresh --------------------------------------------
    def _refresh_payloads(self, analyze: bool = True) -> int:
        """One refresh: re-analyze + re-plan the query set, then
        atomically hot-swap the published payload set.  In-flight and
        concurrent requests keep executing whatever payload they already
        hold -- there is no serving gap, only a generation bump."""
        payloads = prewarm(
            self._planning_db,
            self.queries,
            k_values=self.k_values,
            plan_cache=self.plan_cache,
            analyze=analyze,
            answer=self.answer,
        )
        with self._payload_lock:
            self._payloads = payloads
            self._generation += 1
            return self._generation

    def _refresh_loop(self) -> None:
        while not self._stop_event.is_set():
            timeout = self.refresh_seconds if self.refresh_seconds else _TICK_SECONDS
            try:
                request = self._refresh_requests.get(timeout=timeout)
            except queue.Empty:
                # Timer tick: refresh only when configured to.
                if not self.refresh_seconds:
                    continue
                request = None
            if self._stop_event.is_set():
                break
            connection: Optional[_Connection] = None
            frame_id = None
            if request is not None:
                connection, frame_id = request
            if self._planning_db is None:
                if connection is not None:
                    self._send_error(
                        connection, frame_id, "refresh_unavailable",
                        "daemon was started without --query; there is no "
                        "query set to re-plan",
                    )
                continue
            started = time.monotonic()
            try:
                generation = self._refresh_payloads(analyze=True)
            except Exception as exc:  # keep serving on a failed refresh
                self.stats.bump("refresh_errors")
                if connection is not None:
                    self._send_error(
                        connection, frame_id, "refresh_failed", str(exc)
                    )
                continue
            self.stats.bump("refreshes")
            if connection is not None:
                connection.send(
                    dict(
                        _base_frame("response", frame_id),
                        refreshed=True,
                        generation=generation,
                        seconds=round(time.monotonic() - started, 4),
                    )
                )


# ----------------------------------------------------------------------
# Client.
# ----------------------------------------------------------------------


class DaemonClient:
    """A small synchronous client for :class:`ServingDaemon`.

    One socket, one request at a time: each call sends a frame and blocks
    for the matching response (``id`` echo checked).  Structured error
    frames raise :class:`DaemonRequestError` (``.code`` holds the
    machine-readable code); transport failures raise
    :class:`DaemonDisconnected`.

    ``fault_plan`` arms the *client seam* of :mod:`repro.db.faults`:
    before each ``execute`` the plan is consulted
    (``connection_id`` = this client's ``connection_id``,
    ``request_index`` = the 0-based count of executes sent on this
    connection) and a matching ``client_disconnect`` / ``partial_frame``
    / ``stalled_reader`` rule is acted out on the wire -- the
    deterministic chaos the daemon tests and CI smoke replay.  Worker
    rules in the same plan are ignored here (they fire in the workers).
    """

    def __init__(
        self,
        address,
        *,
        timeout: float = 60.0,
        connection_id: int = 0,
        fault_plan=None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.address = parse_address(address) if isinstance(address, str) else address
        self.timeout = float(timeout)
        self.connection_id = int(connection_id)
        self.max_frame_bytes = int(max_frame_bytes)
        if fault_plan is None or isinstance(fault_plan, FaultPlan):
            self._fault_plan = fault_plan
        else:
            self._fault_plan = FaultPlan.from_payload(fault_plan)
        self._executes = 0
        self._ids = 0
        self._sock: Optional[socket.socket] = _connect(self.address, self.timeout)
        # One reader for the connection's lifetime: bytes buffered past a
        # frame boundary (e.g. while skipping a stale response) must
        # survive into the next call.
        self._reader = _FrameReader(
            self._sock,
            max_frame_bytes=self.max_frame_bytes,
            io_timeout=self.timeout,
            stop_event=threading.Event(),  # never set: deadline rules here
        )

    # -- request kinds -------------------------------------------------
    def execute(self, payload: Mapping) -> Dict[str, Any]:
        """Serve one ``SERVING_FORMAT`` payload; returns the response
        record (including the pool's ``"serving"`` provenance block)."""
        request_index = self._executes
        self._executes += 1
        rule: Optional[FaultRule] = None
        if self._fault_plan is not None:
            rule = self._fault_plan.connection_action(
                connection_id=self.connection_id, request_index=request_index
            )
        frame = self._frame("execute")
        frame["payload"] = dict(payload)
        reply = self._request(frame, fault_rule=rule)
        return reply["response"]

    def health(self) -> Dict[str, Any]:
        return self._request(self._frame("health"))

    def metrics(self) -> Dict[str, Any]:
        """The daemon's metrics snapshot: counters, queue/in-flight
        depth, latency quantiles and the mergeable registry payload."""
        return self._request(self._frame("metrics"))

    def plans(self) -> Dict[str, Any]:
        """The daemon's current payload set: ``{"generation", "payloads"}``."""
        return self._request(self._frame("plans"))

    def refresh(self) -> Dict[str, Any]:
        """Force one statistics refresh; blocks until it completes."""
        return self._request(self._frame("refresh"))

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit (acknowledged immediately)."""
        return self._request(self._frame("shutdown"))

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- transport -----------------------------------------------------
    def _frame(self, kind: str) -> Dict[str, Any]:
        self._ids += 1
        return _base_frame(kind, self._ids)

    def _require_sock(self) -> socket.socket:
        if self._sock is None:
            raise DaemonDisconnected("client connection is closed")
        return self._sock

    def _request(
        self, frame: Dict[str, Any], fault_rule: Optional[FaultRule] = None
    ) -> Dict[str, Any]:
        sock = self._require_sock()
        data = encode_frame(frame, self.max_frame_bytes)
        if fault_rule is not None:
            self._act_out(sock, data, fault_rule)
            if fault_rule.kind != "stalled_reader":
                return self._await_drop(frame)
        else:
            try:
                sock.sendall(data)
            except OSError as exc:
                self.close()
                raise DaemonDisconnected(f"send failed: {exc}") from exc
        reply = self._read_reply(frame)
        if reply.get("kind") == "error":
            raise DaemonRequestError(reply)
        return reply

    def _read_reply(self, frame: Mapping) -> Dict[str, Any]:
        self._require_sock()
        deadline = time.monotonic() + self.timeout
        reader = self._reader
        while True:
            if time.monotonic() > deadline:
                self.close()
                raise DaemonDisconnected(
                    f"no response within {self.timeout}s"
                )
            try:
                reply = reader.read()
            except (DaemonProtocolError, DaemonDisconnected) as exc:
                self.close()
                raise DaemonDisconnected(
                    f"connection lost awaiting response: {exc}"
                ) from exc
            if reply is None or reply is _STOPPED:
                self.close()
                raise DaemonDisconnected(
                    "daemon closed the connection before responding"
                )
            if reply.get("id") == frame.get("id") or reply.get("id") is None:
                return reply
            # A response to an older (faulted) request: keep reading.

    # -- the scripted client seam --------------------------------------
    def _act_out(self, sock: socket.socket, data: bytes, rule: FaultRule) -> None:
        """Perform a connection fault on the wire.  ``client_disconnect``
        writes the *whole* request and hard-closes without reading the
        response -- the request is admitted and in flight when the daemon
        notices the disconnect, which is exactly the abandon-and-release
        path under test.  ``partial_frame`` writes half a frame and goes
        silent (the daemon's mid-frame deadline drops us before anything
        is admitted); ``stalled_reader`` stalls ``seconds`` mid-frame and
        then finishes (surviving iff the stall beats the daemon's I/O
        timeout)."""
        half = max(1, len(data) // 2)
        try:
            if rule.kind == "stalled_reader":
                sock.sendall(data[:half])
                time.sleep(rule.seconds)
                sock.sendall(data[half:])
                return
            if rule.kind == "partial_frame":
                sock.sendall(data[:half])
                return
            # client_disconnect: full request, then vanish mid-request.
            sock.sendall(data)
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),  # hard close: RST, no FIN drain
            )
            self.close()
        except OSError as exc:
            self.close()
            raise DaemonDisconnected(
                f"injected {rule.kind} fault aborted the send: {exc}"
            ) from exc

    def _await_drop(self, frame: Mapping) -> Dict[str, Any]:
        """After ``client_disconnect``/``partial_frame`` the request can
        never be answered; surface the injected fault as the disconnect
        the script expects."""
        if self._sock is not None:  # partial_frame: wait for the daemon
            try:  # to notice the stall and drop us
                self._read_reply(frame)
            except DaemonDisconnected:
                pass
            finally:
                self.close()
        raise DaemonDisconnected(
            "injected connection fault: this request was deliberately lost"
        )


__all__ = [
    "DAEMON_FORMAT",
    "DAEMON_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "ERROR_CODES",
    "REQUEST_KINDS",
    "DaemonClient",
    "DaemonDisconnected",
    "DaemonError",
    "DaemonProtocolError",
    "DaemonRequestError",
    "ServingDaemon",
    "decode_frame",
    "encode_frame",
    "format_address",
    "parse_address",
]
