"""Process-parallel serving plane: an mmap-shared worker pool with
budget-aware admission and plan-replay warm-up.

The storage plane (:mod:`repro.db.storage`) already lets any number of
processes ``Database.open()`` one stored workload and map every column
file read-only with ``np.memmap`` -- one physical copy of the data, no
column pickling, page cache shared by the kernel.  This module builds the
serving tier on top of that property:

**Wire format.**  A request is a compact JSON-safe *payload* -- the query
fingerprint (:func:`~repro.db.storage.query_fingerprint`: atom names,
predicates, term tuples, output variables) plus a plan in the PlanCache's
stored format (``{"kind": "join_order", "order": [...]}`` or ``{"kind":
"hypertree", "decomposition": <decomposition_to_payload(...)>}``) plus the
execution knobs (``budget``, ``threads``, ``memory_budget_bytes``) and the
answer mode (``"rows"`` ships decoded rows, ``"digest"`` a SHA-256 over
the canonical answer rendering).  No pickled plan object, column or
relation ever crosses the process boundary; a payload round-trips through
``json.dumps`` unchanged.  Responses carry the answer (or digest), the
cardinality and the :meth:`ExecutionResult.stats_payload` work counters.

**Determinism.**  Worker processes run :func:`execute_payload` -- the very
function the serial oracle runs in-process.  The payload rebuilds the
query with :func:`query_from_payload`, the plan IR with
:func:`~repro.db.plan_ir.plan_ir_from_payload` (hypertree payloads
reconstruct against the *original* query hypergraph, exactly the
plan-cache replay path), and executes on the shared kernels.  Because
answers, row order and every :meth:`stats_payload` field are functions of
(store bytes, payload) alone -- pinned by the storage and serving
Hypothesis suites -- a pooled response is byte-identical to the serial
in-process response, worker count and scheduling notwithstanding.  A
budget abort is equally deterministic at ``threads == 1``: the response
reports ``work_so_far`` and abort-time counters equal to the serial
abort's.

**Admission.**  :meth:`ServingPool.submit` admits a request under a slice
of the pool's global memory budget: the payload's own
``memory_budget_bytes`` if set, else the pool's per-query default.  The
sum of admitted slices never exceeds ``global_memory_budget_bytes`` and
at most ``max_pending`` requests may be in flight, so a burst of heavy
joins degrades to :class:`AdmissionRejected` backpressure (callers
re-submit after collecting) instead of memory exhaustion.  The admitted
slice is written into the payload, so the same number that gated
admission also bounds the kernels' transient allocations during
execution.

**Failure.**  Failure is a first-class, deterministically testable input
(:mod:`repro.db.faults` scripts it).  A worker that *raises* ships an
``"error"`` response for that request only.  A worker *process* that dies
mid-request is handled by the pool's supervisor: the in-flight request is
requeued (with exponential backoff, up to its ``max_attempts`` budget),
a replacement worker is spawned in the dead worker's slot -- its startup
hello re-validated against the pool's store digest -- and serving
continues transparently; :attr:`ServingPool.restarts` counts the
respawns.  Only after ``max_worker_restarts`` respawns is the pool
*degraded*: new submissions are refused (:class:`ServingError`), but the
surviving workers and every completed response are drained --
:meth:`run` returns partial results with per-request ``"error"`` records
instead of raising away finished work.  Requests may carry
``deadline_seconds`` (wall-clock from dispatch; an expired attempt is
retried or reported as a ``"timeout": true`` error record, and the late
response is drained, never misdelivered) and ``max_attempts``.  Every
pooled response carries a ``"serving"`` provenance block (``attempts``,
``restarts``) -- excluded from :func:`answer_digest`, like
``peak_transient_bytes``, because it is scheduling-dependent;
:func:`strip_provenance` recovers the oracle-comparable payload.

**Warm-up.**  :func:`prewarm` refreshes statistics (optionally) and runs
the planner once per (query, k) through a :class:`PlanCache`, returning
ready-to-ship payloads.  A second prewarm over the same cache replays
stored plans and reports ``planning_seconds == 0.0`` on every payload, so
steady-state serving does no planning at all.
"""

from __future__ import annotations

import logging
import os
import queue
import time
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.db.database import Database
from repro.db.executor import execute_plan
from repro.db.faults import FaultPlan, resolve_fault_plan
from repro.db.plan_ir import plan_ir_from_payload
from repro.db.scheduler import seconds_from_env
from repro.db.storage import (
    PlanCache,
    canonical_digest,
    decomposition_to_payload,
    query_fingerprint,
    store_digest,
)
from repro.exceptions import DatabaseError
from repro.obs.metrics import resolve_registry
from repro.obs.trace import TraceRecorder
from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery

_LOG = logging.getLogger("repro.serving")

#: Wire-format marker + version carried by every serving payload.  Workers
#: reject payloads they do not understand instead of guessing -- the same
#: policy as the storage format.
SERVING_FORMAT = "repro-serving"
SERVING_VERSION = 1

#: Environment override for the multiprocessing start method ("fork" by
#: default where available: workers then inherit the imported modules and
#: start in milliseconds; "spawn"/"forkserver" work identically, just
#: slower to boot, because workers share nothing but the store path).
MP_CONTEXT_ENV = "REPRO_SERVE_MP_CONTEXT"

#: Environment default for per-request deadlines (seconds; unset = no
#: deadline).  Parsed by :func:`repro.db.scheduler.seconds_from_env`.
DEADLINE_ENV = "REPRO_SERVE_DEADLINE_SECONDS"

#: Response key of the pool-side provenance block (``attempts`` /
#: ``restarts``).  Scheduling-dependent, hence excluded from
#: :func:`answer_digest` and stripped for oracle comparisons.
PROVENANCE_KEY = "serving"

#: Response key of the worker-side trace block (``{"id", "pid",
#: "spans"}``), attached when the payload requests tracing
#: (``payload["trace"]``).  Timing-dependent, hence treated exactly like
#: :data:`PROVENANCE_KEY`: excluded from :func:`answer_digest`, removed
#: by :func:`strip_provenance`.
TRACE_KEY = "trace"

_ANSWER_MODES = ("rows", "digest")

#: Fallback wait (seconds) for the rare states with nothing to select on
#: (no live worker handles).  The supervisor normally blocks directly on
#: worker response channels / process sentinels plus its own computed
#: timers (retry backoffs, request deadlines, hello deadlines), so traffic
#: and crashes wake it immediately; correctness never depends on this.
_POLL_SECONDS = 0.1

#: Ceiling on the exponential retry backoff (seconds).
_MAX_BACKOFF_SECONDS = 2.0


class ServingError(DatabaseError):
    """The serving pool is broken: a worker process died, disagreed about
    the store content, or spoke the wrong protocol."""


class AdmissionRejected(DatabaseError):
    """Backpressure: the request was *not* admitted (queue full, or its
    memory slice does not fit the remaining global budget).  Re-submit
    after collecting responses; nothing was partially executed."""


# ----------------------------------------------------------------------
# Wire format: queries, plans, execution.
# ----------------------------------------------------------------------


def query_to_payload(query: ConjunctiveQuery) -> Dict[str, object]:
    """The JSON-safe query wire format -- exactly the structural
    fingerprint the caches key on, so one rendering serves both."""
    return query_fingerprint(query)


def query_from_payload(payload: Mapping) -> ConjunctiveQuery:
    """Rebuild a query from :func:`query_to_payload` output."""
    try:
        atoms = tuple(
            Atom(str(name), str(predicate), tuple(str(t) for t in terms))
            for name, predicate, terms in payload["atoms"]
        )
        return ConjunctiveQuery(
            atoms=atoms,
            output_variables=tuple(str(v) for v in payload["output"]),
            name=str(payload.get("name", "Q")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatabaseError(f"malformed query payload: {exc!r}") from exc


def plan_to_payload(
    plan,
    *,
    budget: Optional[int] = None,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    answer: str = "rows",
    deadline_seconds: Optional[float] = None,
    max_attempts: Optional[int] = None,
) -> Dict[str, object]:
    """One complete serving payload for a planned query.

    ``plan`` is a :class:`~repro.planner.plans.HypertreePlan` or
    :class:`~repro.planner.plans.JoinOrderPlan`; its decomposition /
    join order serialises through the PlanCache's payload format.
    ``planning_seconds`` rides along for reporting only (``0.0`` when the
    plan came out of a warm cache) -- workers never read it.
    ``deadline_seconds`` / ``max_attempts`` are pool-side scheduling knobs
    (wall-clock per attempt, and the retry budget for timed-out or
    crash-lost dispatches); workers never read them either.
    """
    if answer not in _ANSWER_MODES:
        raise DatabaseError(
            f"unknown answer mode {answer!r}; expected one of {_ANSWER_MODES}"
        )
    if hasattr(plan, "decomposition"):
        plan_meta: Dict[str, object] = {
            "kind": "hypertree",
            "decomposition": decomposition_to_payload(plan.decomposition),
        }
    elif hasattr(plan, "order"):
        plan_meta = {"kind": "join_order", "order": list(plan.order)}
    else:
        raise DatabaseError(
            f"cannot serialise plan of type {type(plan).__name__}"
        )
    payload: Dict[str, object] = {
        "format": SERVING_FORMAT,
        "version": SERVING_VERSION,
        "query": query_to_payload(plan.query),
        "plan": plan_meta,
        "answer": answer,
        "planning_seconds": float(plan.planning_seconds),
    }
    if budget is not None:
        payload["budget"] = int(budget)
    if threads is not None:
        payload["threads"] = int(threads)
    if memory_budget_bytes is not None:
        payload["memory_budget_bytes"] = int(memory_budget_bytes)
    if deadline_seconds is not None:
        payload["deadline_seconds"] = float(deadline_seconds)
    if max_attempts is not None:
        payload["max_attempts"] = int(max_attempts)
    return payload


def _check_payload(payload: Mapping) -> None:
    if not isinstance(payload, Mapping):
        raise DatabaseError(f"serving payload must be a mapping, got {payload!r}")
    if payload.get("format") != SERVING_FORMAT:
        raise DatabaseError(
            f"payload has format marker {payload.get('format')!r}, "
            f"expected {SERVING_FORMAT!r}"
        )
    if payload.get("version") != SERVING_VERSION:
        raise DatabaseError(
            f"payload is serving-format version {payload.get('version')!r}; "
            f"this build speaks version {SERVING_VERSION}"
        )
    if payload.get("answer", "rows") not in _ANSWER_MODES:
        raise DatabaseError(
            f"unknown answer mode {payload.get('answer')!r}; "
            f"expected one of {_ANSWER_MODES}"
        )
    deadline = payload.get("deadline_seconds")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
            raise DatabaseError("payload 'deadline_seconds' must be a number")
        if float(deadline) <= 0:
            raise DatabaseError("payload 'deadline_seconds' must be positive")
    attempts = payload.get("max_attempts")
    if attempts is not None:
        if isinstance(attempts, bool) or not isinstance(attempts, int):
            raise DatabaseError("payload 'max_attempts' must be an integer")
        if attempts < 1:
            raise DatabaseError("payload 'max_attempts' must be >= 1")
    trace_req = payload.get("trace")
    if trace_req is not None and not isinstance(trace_req, bool):
        if not isinstance(trace_req, Mapping):
            raise DatabaseError(
                "payload 'trace' must be a boolean or a mapping"
            )
        trace_id = trace_req.get("id")
        if trace_id is not None and not isinstance(trace_id, (str, int)):
            raise DatabaseError("payload 'trace.id' must be a string or integer")


def answer_digest(result_payload: Mapping) -> str:
    """Content digest of a response's answer: canonical JSON over the
    attributes and rows (or the Boolean verdict).  Stable across engines,
    encodings and worker counts because the rows themselves are."""
    if result_payload.get("boolean") is not None:
        return canonical_digest({"boolean": result_payload["boolean"]})
    return canonical_digest(
        {
            "attributes": list(result_payload.get("attributes", ())),
            "rows": [list(row) for row in result_payload.get("rows", ())],
        }
    )


def strip_provenance(response: Mapping) -> Dict[str, object]:
    """A response without its non-deterministic sidecar blocks: the
    pool-side ``"serving"`` provenance and the ``"trace"`` span block.

    ``attempts``/``restarts`` depend on scheduling (which worker died
    when) and spans carry wall-clock timings, so oracle comparisons --
    pooled response vs in-process :func:`execute_payload` -- go through
    this helper; everything that remains is a function of (store bytes,
    payload) alone."""
    return {
        k: v for k, v in response.items() if k not in (PROVENANCE_KEY, TRACE_KEY)
    }


def execute_payload(payload: Mapping, database: Database) -> Dict[str, object]:
    """Run one serving payload against an open database and render the
    response payload.

    This single function is both the worker loop's body and the serial
    in-process oracle the test suites compare against -- by construction
    the pool cannot drift from the oracle.  A budget abort is a normal
    response (``status == "budget_exceeded"``) carrying the deterministic
    abort counters; only protocol violations raise.

    A truthy ``payload["trace"]`` (``True``, or ``{"id": <trace id>}``)
    records per-plan-node kernel spans during execution and attaches them
    as the :data:`TRACE_KEY` response block -- attached *after* the digest
    is computed and stripped by :func:`strip_provenance`, so traced and
    untraced responses are byte-identical everywhere else.
    """
    from repro.db.algebra import EvaluationBudgetExceeded

    _check_payload(payload)
    query = query_from_payload(payload["query"])
    plan_ir = plan_ir_from_payload(query, payload["plan"])
    answer_mode = payload.get("answer", "rows")
    trace_req = payload.get("trace")
    recorder = None
    trace_id = None
    if trace_req:
        recorder = TraceRecorder()
        trace_id = (
            trace_req.get("id") if isinstance(trace_req, Mapping) else None
        )
        if trace_id is None:
            trace_id = query.name

    def _trace_block() -> Dict[str, object]:
        return {
            "id": trace_id,
            "pid": os.getpid(),
            "spans": recorder.to_payload(),
        }

    try:
        if recorder is not None:
            with recorder.span("execute", "serving", trace_id=trace_id):
                result = execute_plan(
                    plan_ir,
                    database,
                    budget=payload.get("budget"),
                    threads=payload.get("threads"),
                    memory_budget_bytes=payload.get("memory_budget_bytes"),
                    trace=recorder,
                    trace_id=trace_id,
                )
        else:
            result = execute_plan(
                plan_ir,
                database,
                budget=payload.get("budget"),
                threads=payload.get("threads"),
                memory_budget_bytes=payload.get("memory_budget_bytes"),
            )
    except EvaluationBudgetExceeded as exc:
        response = {
            "status": "budget_exceeded",
            "query": query.name,
            "work_so_far": exc.work_so_far,
            "budget": exc.budget,
        }
        if recorder is not None:
            response[TRACE_KEY] = _trace_block()
        return response
    response: Dict[str, object] = {
        "status": "ok",
        "query": query.name,
        "boolean": result.boolean,
        "cardinality": result.cardinality,
        "stats": result.stats_payload(),
    }
    rows = result.answer_rows()
    if rows is not None:
        response["attributes"] = list(result.relation.attributes)
    if answer_mode == "rows":
        if rows is not None:
            response["rows"] = rows
    else:
        probe = dict(response)
        if rows is not None:
            probe["rows"] = rows
        response["digest"] = answer_digest(probe)
    if recorder is not None:
        response[TRACE_KEY] = _trace_block()
    return response


def aggregate_stats(responses: Iterable[Mapping]) -> Dict[str, object]:
    """Fold the ``stats`` payloads of many responses into one: counters
    sum, peaks max -- the same commutative merge
    :class:`~repro.db.algebra.OperatorStats` uses across threads, so the
    aggregate over any partition of a workload is partition-independent."""
    totals: Dict[str, int] = {}
    operations: Dict[str, int] = {}
    peak = 0
    for response in responses:
        stats = response.get("stats")
        if not stats:
            continue
        for key, value in stats.items():
            if key == "operations":
                for op, count in value.items():
                    operations[op] = operations.get(op, 0) + int(count)
            elif key == "peak_transient_elements":
                peak = max(peak, int(value))
            else:
                totals[key] = totals.get(key, 0) + int(value)
    totals["operations"] = {key: operations[key] for key in sorted(operations)}
    totals["peak_transient_elements"] = peak
    return totals


# ----------------------------------------------------------------------
# The worker process.
# ----------------------------------------------------------------------


def _store_report(database: Database) -> Dict[str, object]:
    """What a worker tells the pool about the store it opened: the catalog
    content digest (all workers must agree) and how many of its columns
    arrived as read-only ``np.memmap`` views (the bench asserts this is
    every column -- shared pages, not pickled copies)."""
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - row-engine fallback
        np = None
    total_columns = 0
    mmap_columns = 0
    for name in database.relation_names():
        relation = database.relation(name)
        columns = list(getattr(relation, "_columns", ()))
        selection = getattr(relation, "_selection", None)
        if selection is not None:
            columns.append(selection)
        for column in columns:
            total_columns += 1
            if np is not None and isinstance(column, np.memmap):
                mmap_columns += 1
    return {
        "pid": os.getpid(),
        "store_digest": store_digest(database.source_path),
        "relations": len(list(database.relation_names())),
        "total_columns": total_columns,
        "mmap_columns": mmap_columns,
    }


def _worker_main(worker_id, store_path, request_queue, response_queue, options):
    """Worker loop: open the store once, then serve payloads until told to
    stop.  Runs in a child process; communicates only via the two queues.
    Top-level (not nested) so ``spawn``-style contexts can import it.

    The options mapping may carry a ``"faults"`` payload -- the scripted
    :class:`~repro.db.faults.FaultPlan`, applied right before
    :func:`execute_payload` so injected crashes/raises/delays fire at an
    exact, reproducible point of the protocol.  Each worker process builds
    its own plan instance (fire counts reset on respawn).

    The hello report carries ``startup_seconds`` (process entry to ready)
    so slow spawn-method cold starts are visible at the pool; each result
    message carries the attempt's wall-clock seconds for the pool's
    ``worker_execute_seconds`` histogram."""
    started = time.monotonic()
    try:
        database = Database.open(
            store_path,
            columnar=options.get("columnar", True),
            threads=options.get("threads"),
            memory_budget_bytes=options.get("memory_budget_bytes"),
        )
        faults = None
        if options.get("faults"):
            faults = FaultPlan.from_payload(options["faults"])
        report = _store_report(database)
        report["startup_seconds"] = round(time.monotonic() - started, 6)
        response_queue.put(("hello", worker_id, report))
    except BaseException as exc:  # noqa: BLE001 - must report, not vanish
        response_queue.put(("fatal", worker_id, repr(exc)))
        return
    while True:
        message = request_queue.get()
        if message[0] == "stop":
            response_queue.put(("bye", worker_id, None))
            return
        _, request_id, attempt, payload = message
        attempt_started = time.monotonic()
        try:
            if faults is not None:
                faults.apply(
                    worker_id=worker_id, request_id=request_id, attempt=attempt
                )
            result = execute_payload(payload, database)
        except Exception as exc:  # noqa: BLE001 - ship the error, keep serving
            result = {"status": "error", "error": repr(exc)}
        elapsed = time.monotonic() - attempt_started
        response_queue.put(
            ("result", worker_id, request_id, attempt, result, elapsed)
        )


# ----------------------------------------------------------------------
# The pool.
# ----------------------------------------------------------------------


class _RequestState:
    """Pool-side bookkeeping for one admitted request."""

    __slots__ = (
        "payload", "attempts", "max_attempts", "deadline_seconds",
        "trace_id", "submitted_at", "enqueued_at",
    )

    def __init__(self, payload, max_attempts, deadline_seconds) -> None:
        self.payload = payload
        self.attempts = 0  # dispatches so far; bumped at dispatch time
        self.max_attempts = max_attempts
        self.deadline_seconds = deadline_seconds
        self.trace_id = None  # set when the pool traces requests
        self.submitted_at = 0.0  # monotonic admission instant
        self.enqueued_at = 0.0  # monotonic start of the current queue wait


class ServingPool:
    """A supervised pool of worker processes serving one stored database.

    Parameters
    ----------
    store_path:
        Directory of a stored database (:meth:`Database.save` output).
        Every worker ``Database.open()``'s it independently; the pool
        checks all workers report the same catalog content digest.
    workers:
        Number of worker processes (slots; a slot whose process dies is
        refilled by the supervisor while the restart budget lasts).
    global_memory_budget_bytes:
        Cap on the *sum* of admitted requests' memory slices.  ``None``
        disables budget-based admission (queue-length backpressure still
        applies).
    default_memory_budget_bytes:
        Slice charged to (and written into) a payload that does not set
        its own ``memory_budget_bytes``.  ``None`` means an unbudgeted
        payload claims the whole global budget -- heavy strangers
        serialise instead of overcommitting.
    max_pending:
        Most requests admitted but not yet collected.  Defaults to
        ``4 * workers``.
    mp_context:
        ``multiprocessing`` start-method name; defaults to
        ``REPRO_SERVE_MP_CONTEXT`` or ``"fork"`` where available.
    worker_threads / worker_memory_budget_bytes / columnar:
        Execution knobs each worker opens its database with (a payload's
        own knobs still override per request, exactly as in-process).
    startup_timeout:
        Seconds to wait for a worker's hello -- at pool startup (all
        workers; a miss is a hard :class:`ServingError`) and again for
        every supervisor respawn (a replacement that never reports is
        retired and counts as another death).
    max_worker_restarts:
        Total respawns the supervisor may perform over the pool's
        lifetime.  Once exhausted the pool *degrades*: new submissions
        are refused, surviving workers drain the already-admitted work.
    default_max_attempts:
        Attempt budget for payloads that do not set ``max_attempts``.
    default_deadline_seconds:
        Per-attempt wall-clock deadline for payloads that do not set
        ``deadline_seconds``; ``None`` defers to the
        ``REPRO_SERVE_DEADLINE_SECONDS`` environment default (unset =
        no deadline).
    retry_backoff_seconds:
        Base of the exponential backoff between attempts of one request
        (``base * 2**(attempt-1)``, capped at 2s).
    fault_plan:
        A :class:`~repro.db.faults.FaultPlan` (or its JSON payload)
        scripting deterministic worker faults; ``None`` defers to the
        ``REPRO_SERVE_FAULTS`` environment variable.
    trace:
        A :class:`~repro.obs.trace.TraceRecorder` collecting the pool's
        request-path spans (``admission``, ``queue``, ``attempt``) plus
        every worker's ingested kernel spans.  When set, payloads without
        their own ``"trace"`` key are shipped with one (id
        ``req-<request id>``) so workers record and return kernel spans.
        ``None`` (the default) disables span recording entirely -- the
        answer path is byte-identical either way.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to record service
        counters and histograms into (admissions, rejections, retries,
        timeouts, restarts, worker startup/execute seconds).  ``None``
        creates a private live registry; ``False`` installs the null
        registry (observability fully off, the benchmark baseline).
    """

    def __init__(
        self,
        store_path,
        workers: int = 2,
        *,
        global_memory_budget_bytes: Optional[int] = None,
        default_memory_budget_bytes: Optional[int] = None,
        max_pending: Optional[int] = None,
        mp_context: Optional[str] = None,
        worker_threads: Optional[int] = None,
        worker_memory_budget_bytes: Optional[int] = None,
        columnar: bool = True,
        startup_timeout: float = 60.0,
        max_worker_restarts: int = 2,
        default_max_attempts: int = 3,
        default_deadline_seconds: Optional[float] = None,
        retry_backoff_seconds: float = 0.05,
        fault_plan=None,
        trace=None,
        metrics=None,
    ) -> None:
        import multiprocessing as mp

        self.store_path = str(store_path)
        self.workers = max(1, int(workers))
        self.global_memory_budget_bytes = global_memory_budget_bytes
        self.default_memory_budget_bytes = default_memory_budget_bytes
        self.max_pending = (
            4 * self.workers if max_pending is None else max(1, int(max_pending))
        )
        self.startup_timeout = float(startup_timeout)
        self.max_worker_restarts = max(0, int(max_worker_restarts))
        self.default_max_attempts = max(1, int(default_max_attempts))
        if default_deadline_seconds is None:
            default_deadline_seconds = seconds_from_env(DEADLINE_ENV)
        self.default_deadline_seconds = default_deadline_seconds
        self.retry_backoff_seconds = max(0.0, float(retry_backoff_seconds))
        self.trace = trace
        self.metrics = resolve_registry(metrics)
        plan = resolve_fault_plan(fault_plan)
        self._fault_payload = plan.to_payload() if plan is not None else None
        if mp_context is None:
            mp_context = os.environ.get(MP_CONTEXT_ENV, "").strip() or None
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else None
        self._context = mp.get_context(mp_context)
        self._options = {
            "columnar": columnar,
            "threads": worker_threads,
            "memory_budget_bytes": worker_memory_budget_bytes,
            "faults": self._fault_payload,
        }
        self._next_request_id = 0
        self._pending: Dict[int, int] = {}  # request id -> admitted slice
        self._admitted_bytes = 0
        self._requests: Dict[int, _RequestState] = {}
        self._results: Dict[int, Dict[str, object]] = {}
        self._backlog: List[object] = []  # [not_before, request id], in order
        self._inflight: Dict[int, List] = {}  # worker -> [rid, attempt, t0, off]
        self._expired = set()  # collect()-abandoned ids: drain, never deliver
        self._workers: Dict[int, Dict[str, object]] = {}
        self._retired: List[object] = []  # dead processes, joined at close()
        self._broken: Optional[str] = None  # startup hard failure
        self._degraded: Optional[str] = None  # restart budget exhausted
        self._closed = False
        self.restarts = 0
        self._store_digest: Optional[str] = None
        self.worker_reports: Dict[int, Dict[str, object]] = {}
        for worker_id in range(self.workers):
            self._spawn_worker(worker_id)
        self._await_hellos(self.startup_timeout)

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def degraded(self) -> Optional[str]:
        """Why the pool stopped accepting submissions (``None`` while the
        restart budget lasts)."""
        return self._degraded

    @property
    def queue_depth(self) -> int:
        """Admitted requests waiting in the backlog (not yet dispatched)."""
        return len(self._backlog)

    @property
    def inflight_count(self) -> int:
        """Requests currently executing on a worker."""
        return len(self._inflight)

    @property
    def pending_count(self) -> int:
        """Requests admitted but not yet collected (backlog + in flight +
        resolved-but-uncollected)."""
        return len(self._pending)

    def _note_worker_ready(self, worker_id: int, report: Mapping) -> None:
        """Record a worker's startup-to-ready timing: histogram + log, so
        slow spawn-method cold starts are visible instead of silent."""
        startup_seconds = report.get("startup_seconds")
        if startup_seconds is None:
            return
        self.metrics.histogram("worker_startup_seconds").observe(
            float(startup_seconds)
        )
        _LOG.info(
            "worker %d (pid %s) ready in %.3fs",
            worker_id,
            report.get("pid"),
            float(startup_seconds),
        )

    def _spawn_worker(self, worker_id: int) -> None:
        """Start a (fresh) process in slot ``worker_id`` with its own
        request *and* response queues.  A respawn never reuses the dead
        worker's queues: a request sitting in the old one has already
        been requeued by the supervisor, and the replacement must not
        execute it twice.  Responses are per-worker on purpose -- fault
        isolation: a shared response queue has one cross-process write
        lock, and a worker dying right after a ``put`` (its feeder thread
        still holding that lock) would wedge *every* surviving worker's
        responses.  With a single writer per queue, a dying worker can
        only wedge its own channel, which the supervisor abandons anyway."""
        request_queue = self._context.Queue()
        response_queue = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(
                worker_id,
                self.store_path,
                request_queue,
                response_queue,
                self._options,
            ),
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = {
            "process": process,
            "queue": request_queue,
            "response": response_queue,
            "state": "starting",
            "hello_deadline": time.monotonic() + self.startup_timeout,
        }

    def _await_hellos(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while any(w["state"] == "starting" for w in self._workers.values()):
            self._wait_for_traffic()
            progressed = False
            for worker_id, worker in self._workers.items():
                if worker["state"] != "starting":
                    continue
                try:
                    message = worker["response"].get_nowait()
                except queue.Empty:
                    process = worker["process"]
                    if not process.is_alive():
                        self._fail(
                            f"worker {worker_id} (pid {process.pid}) died "
                            f"during startup with exit code {process.exitcode}"
                        )
                    continue
                if message[0] == "fatal":
                    self._fail(
                        f"worker {message[1]} failed to open the store: "
                        f"{message[2]}"
                    )
                if message[0] != "hello":
                    self._fail(f"protocol violation during startup: {message!r}")
                self.worker_reports[message[1]] = message[2]
                worker["state"] = "ready"
                self._note_worker_ready(message[1], message[2])
                progressed = True
            if not progressed and time.monotonic() > deadline:
                ready = sum(
                    1 for w in self._workers.values() if w["state"] == "ready"
                )
                self._fail(
                    f"workers did not report within {timeout:.0f}s "
                    f"({ready}/{self.workers} hellos)"
                )
        digests = {report["store_digest"] for report in self.worker_reports.values()}
        if len(digests) != 1:
            self._fail(f"workers opened differing stores: digests {sorted(digests)}")
        self._store_digest = digests.pop()

    def _fail(self, reason: str):
        self._broken = reason
        self.close()
        raise ServingError(f"serving pool over {self.store_path!r} broken: {reason}")

    def close(self) -> None:
        """Stop every worker and reap the processes.  Idempotent; called
        automatically on context-manager exit and on pool breakage."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            if worker["state"] != "dead" and worker["process"].is_alive():
                try:
                    worker["queue"].put(("stop",))
                except (OSError, ValueError):  # pragma: no cover - queue gone
                    pass
        for worker in self._workers.values():
            process = worker["process"]
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)
        for process in self._retired:
            process.join(timeout=1.0)

    # -- supervision ---------------------------------------------------
    def _live_workers(self) -> bool:
        return any(
            w["state"] in ("ready", "starting") for w in self._workers.values()
        )

    def _next_timer(self) -> Optional[float]:
        """The earliest monotonic instant at which the supervisor has
        scheduled work of its own: a replacement worker's hello deadline,
        a backlogged retry's ``not_before``, or an in-flight attempt's
        request deadline.  ``None`` when every pending transition will be
        announced by a worker response or a process sentinel instead.

        Entries already due are *excluded*: every due transition is acted
        on by the ``_service`` pump that follows each wait, so anything
        still due-and-undone (e.g. a due retry with no idle worker) is
        waiting on worker traffic, not on a timer -- including it would
        turn the block into a busy spin.
        """
        now = time.monotonic()
        candidates = []
        for worker in self._workers.values():
            if worker["state"] == "starting":
                candidates.append(worker["hello_deadline"])
        for not_before, _ in self._backlog:
            if not_before > now:
                candidates.append(not_before)
        for entry in self._inflight.values():
            request_id, _, dispatched_at, written_off = entry
            if written_off:
                continue
            state = self._requests.get(request_id)
            if state is not None and state.deadline_seconds is not None:
                candidates.append(dispatched_at + state.deadline_seconds)
        return min(candidates) if candidates else None

    def _wait_for_traffic(self, limit: Optional[float] = None) -> None:
        """Block until a live worker's response channel becomes readable,
        any worker process dies (the process sentinel fires on death, so a
        crash wakes the supervisor immediately), the next internal timer
        (:meth:`_next_timer`) comes due, or ``limit`` seconds pass --
        whichever is first.  With no timer and no limit the wait is
        unbounded: every state change the supervisor could act on is then
        announced through one of the handles."""
        timeout = None
        timer = self._next_timer()
        if timer is not None:
            timeout = max(0.0, timer - time.monotonic())
        if limit is not None:
            timeout = limit if timeout is None else min(timeout, limit)
        handles = []
        for worker in self._workers.values():
            if worker["state"] == "dead":
                continue
            handles.append(worker["response"]._reader)
            handles.append(worker["process"].sentinel)
        if handles:
            _connection_wait(handles, timeout=timeout)
        elif timeout is not None:
            time.sleep(min(timeout, _POLL_SECONDS))
        else:
            time.sleep(_POLL_SECONDS)

    def _drain_worker(self, worker_id: int) -> None:
        worker = self._workers[worker_id]
        while True:
            try:
                message = worker["response"].get_nowait()
            except queue.Empty:
                break
            except (EOFError, OSError):  # pragma: no cover - torn final write
                break  # the writer died mid-put; the reaper handles it
            self._handle_message(message)
            if worker["state"] == "dead":  # retired while handling (hello
                break  # digest mismatch): stop reading its channel

    def _service(
        self, block: bool = False, wait_limit: Optional[float] = None
    ) -> None:
        """One pump of the supervisor: drain responses, reap dead workers
        (respawning while the budget lasts), fire request deadlines, and
        dispatch the backlog onto idle workers.  ``block=True`` first
        waits for worker traffic / the next internal timer (bounded by
        ``wait_limit`` when given) -- callers loop."""
        if block:
            self._wait_for_traffic(wait_limit)
        for worker_id in list(self._workers):
            self._drain_worker(worker_id)
        self._reap_dead_workers()
        self._fire_deadlines()
        self._dispatch()

    def _handle_message(self, message) -> None:
        kind = message[0]
        if kind == "result":
            _, worker_id, request_id, attempt, result, elapsed = message
            self.metrics.histogram("worker_execute_seconds").observe(elapsed)
            entry = self._inflight.get(worker_id)
            if (
                entry is not None
                and entry[0] == request_id
                and entry[1] == attempt
            ):
                self._inflight.pop(worker_id)
                if self.trace is not None:
                    state = self._requests.get(request_id)
                    self.trace.add_span(
                        "attempt",
                        "serving",
                        entry[2],
                        time.monotonic(),
                        trace_id=state.trace_id if state is not None else None,
                        attrs={
                            "request": request_id,
                            "attempt": attempt,
                            "worker": worker_id,
                            "status": result.get("status", "?"),
                        },
                    )
            if request_id in self._expired:
                return  # collect() gave up on it: drain, never deliver
            if request_id in self._results or request_id not in self._requests:
                return  # stale duplicate (an earlier attempt already won)
            if self.trace is not None:
                self.trace.ingest(result.get(TRACE_KEY))
            # First response wins; cancel any queued retry of the same id.
            self._results[request_id] = result
            self._backlog = [
                item for item in self._backlog if item[1] != request_id
            ]
        elif kind == "hello":
            _, worker_id, report = message
            worker = self._workers.get(worker_id)
            if worker is None or worker["state"] != "starting":
                return
            if (
                self._store_digest is not None
                and report.get("store_digest") != self._store_digest
            ):
                self._handle_death(
                    worker_id,
                    f"replacement worker {worker_id} disagreed about the "
                    f"store (digest {report.get('store_digest')!r} != "
                    f"{self._store_digest!r})",
                )
                return
            self.worker_reports[worker_id] = report
            worker["state"] = "ready"
            self._note_worker_ready(worker_id, report)
        elif kind == "fatal":
            _, worker_id, error = message
            worker = self._workers.get(worker_id)
            if worker is not None and worker["state"] != "dead":
                self._handle_death(
                    worker_id,
                    f"replacement worker {worker_id} failed to open the "
                    f"store: {error}",
                )
        # "bye" (clean shutdown acknowledgement) needs no action.

    def _reap_dead_workers(self) -> None:
        now = time.monotonic()
        for worker_id, worker in list(self._workers.items()):
            if worker["state"] == "dead":
                continue
            process = worker["process"]
            if not process.is_alive():
                self._handle_death(
                    worker_id,
                    f"worker {worker_id} (pid {process.pid}) died with "
                    f"exit code {process.exitcode}",
                )
            elif worker["state"] == "starting" and now > worker["hello_deadline"]:
                process.terminate()
                self._handle_death(
                    worker_id,
                    f"replacement worker {worker_id} did not report within "
                    f"{self.startup_timeout:.0f}s",
                )

    def _handle_death(self, worker_id: int, reason: str) -> None:
        """One worker is gone: respawn (budget permitting), requeue its
        in-flight request, degrade the pool when the budget is spent."""
        worker = self._workers[worker_id]
        if worker["state"] == "dead":
            return
        worker["state"] = "dead"
        process = worker["process"]
        if process.is_alive():  # retired, not crashed: make it so
            process.terminate()
        self._retired.append(process)
        entry = self._inflight.pop(worker_id, None)
        if self.restarts < self.max_worker_restarts:
            self.restarts += 1
            self.metrics.counter("worker_restarts").inc()
            self._spawn_worker(worker_id)
        elif self._degraded is None:
            self._degraded = (
                f"restart budget ({self.max_worker_restarts}) exhausted; "
                f"last death: {reason}"
            )
        if entry is not None:
            # The crashed attempt never sends a result message, so record
            # its span here -- the trace shows the failed attempt next to
            # the retry that replaces it.
            if self.trace is not None:
                state = self._requests.get(entry[0])
                self.trace.add_span(
                    "attempt",
                    "serving",
                    entry[2],
                    time.monotonic(),
                    trace_id=state.trace_id if state is not None else None,
                    attrs={
                        "request": entry[0],
                        "attempt": entry[1],
                        "worker": worker_id,
                        "status": "crashed",
                    },
                )
            if not entry[3]:
                self._requeue_or_fail(
                    entry[0], f"worker crashed mid-request: {reason}"
                )
        self._fail_unservable()

    def _requeue_or_fail(
        self, request_id: int, reason: str, *, timeout: bool = False
    ) -> None:
        """A dispatched attempt was lost (crash) or written off (deadline):
        schedule a retry with exponential backoff, or -- attempt budget or
        workers exhausted -- resolve the request to an error record."""
        state = self._requests.get(request_id)
        if state is None or request_id in self._results:
            return
        if state.attempts < state.max_attempts and self._live_workers():
            delay = min(
                self.retry_backoff_seconds * (2 ** (state.attempts - 1)),
                _MAX_BACKOFF_SECONDS,
            )
            self.metrics.counter("retries").inc()
            state.enqueued_at = time.monotonic()
            self._backlog.append([time.monotonic() + delay, request_id])
            return
        self.metrics.counter("request_errors").inc()
        record: Dict[str, object] = {
            "status": "error",
            "error": f"{reason} (after {state.attempts} attempt(s))",
            "attempts": state.attempts,
        }
        if timeout:
            record["timeout"] = True
        self._results[request_id] = record

    def _fire_deadlines(self) -> None:
        now = time.monotonic()
        for entry in self._inflight.values():
            request_id, attempt, dispatched_at, written_off = entry
            if written_off:
                continue
            state = self._requests.get(request_id)
            if state is None or state.deadline_seconds is None:
                continue
            if now - dispatched_at > state.deadline_seconds:
                # The attempt is written off (its late response is still
                # accepted if it beats the retry -- first response wins),
                # but the worker stays busy until it actually answers.
                entry[3] = True
                self.metrics.counter("deadline_timeouts").inc()
                self._requeue_or_fail(
                    request_id,
                    f"request {request_id} attempt {attempt} exceeded its "
                    f"{state.deadline_seconds}s deadline",
                    timeout=True,
                )

    def _fail_unservable(self) -> None:
        """No live workers remain: resolve everything still queued to
        error records (completed responses stay collectable)."""
        if self._live_workers():
            return
        reason = self._degraded or "no live workers remain"
        for item in self._backlog:
            request_id = item[1]
            state = self._requests.get(request_id)
            if state is None or request_id in self._results:
                continue
            self._results[request_id] = {
                "status": "error",
                "error": f"request {request_id} is unservable: {reason}",
                "attempts": state.attempts,
            }
        self._backlog = []

    def _dispatch(self) -> None:
        """Send due backlog entries (submission order) to idle workers,
        one in-flight request per worker."""
        if not self._backlog:
            return
        idle = [
            worker_id
            for worker_id, worker in self._workers.items()
            if worker["state"] == "ready" and worker_id not in self._inflight
        ]
        now = time.monotonic()
        remaining: List[object] = []
        for item in self._backlog:
            not_before, request_id = item
            if (
                request_id in self._results
                or request_id in self._expired
                or request_id not in self._requests
            ):
                continue
            if not idle or not_before > now:
                remaining.append(item)
                continue
            worker_id = idle.pop(0)
            state = self._requests[request_id]
            state.attempts += 1
            try:
                self._workers[worker_id]["queue"].put(
                    ("run", request_id, state.attempts, state.payload)
                )
            except (OSError, ValueError):  # pragma: no cover - queue gone
                state.attempts -= 1
                remaining.append(item)
                continue
            self.metrics.counter("dispatches").inc()
            if self.trace is not None:
                self.trace.add_span(
                    "queue",
                    "serving",
                    state.enqueued_at,
                    now,
                    trace_id=state.trace_id,
                    attrs={
                        "request": request_id,
                        "attempt": state.attempts,
                        "worker": worker_id,
                    },
                )
            self._inflight[worker_id] = [request_id, state.attempts, now, False]
        self._backlog = remaining

    def _expire(self, request_id: int) -> None:
        """collect() gave up on a request: release its admission slice and
        remember the id so any late response is drained, not misdelivered."""
        self._expired.add(request_id)
        self._requests.pop(request_id, None)
        self._results.pop(request_id, None)
        self._admitted_bytes -= self._pending.pop(request_id, 0)
        self._backlog = [item for item in self._backlog if item[1] != request_id]
        for entry in self._inflight.values():
            if entry[0] == request_id:
                entry[3] = True

    # -- admission and dispatch ----------------------------------------
    def _admission_slice(self, payload: Mapping) -> Optional[int]:
        slice_bytes = payload.get("memory_budget_bytes")
        if slice_bytes is None:
            slice_bytes = self.default_memory_budget_bytes
        if slice_bytes is None:
            # Unbudgeted request under a global budget: claim it all, so
            # it runs alone rather than overcommitting the budget.
            return self.global_memory_budget_bytes
        return int(slice_bytes)

    def submit(self, payload: Mapping) -> int:
        """Admit one payload and queue it for dispatch.

        Returns the request id (collect order is the submission order).
        Raises :class:`AdmissionRejected` -- without side effects -- when
        the pending queue is full or the payload's memory slice does not
        fit the remaining global budget; and :class:`ServingError` when
        the pool is broken, degraded (restart budget exhausted) or
        closed.
        """
        if self._broken:
            raise ServingError(f"serving pool is broken: {self._broken}")
        if self._closed:
            raise ServingError("serving pool is closed")
        self._service(block=False)
        if self._degraded:
            raise ServingError(f"serving pool is broken (degraded): {self._degraded}")
        admission_started = time.monotonic()
        _check_payload(payload)
        if len(self._pending) >= self.max_pending:
            self.metrics.counter("admission_rejected").inc()
            raise AdmissionRejected(
                f"{len(self._pending)} requests pending (max {self.max_pending}); "
                "collect responses before submitting more"
            )
        slice_bytes = self._admission_slice(payload)
        budget = self.global_memory_budget_bytes
        if budget is not None:
            needed = budget if slice_bytes is None else slice_bytes
            if needed > budget:
                self.metrics.counter("admission_rejected").inc()
                raise AdmissionRejected(
                    f"request needs a {needed:,}-byte memory slice; the "
                    f"global budget is {budget:,} bytes"
                )
            if self._admitted_bytes + needed > budget:
                self.metrics.counter("admission_rejected").inc()
                raise AdmissionRejected(
                    f"admitting a {needed:,}-byte slice would exceed the "
                    f"global budget ({self._admitted_bytes:,} of {budget:,} "
                    "bytes already admitted); collect responses first"
                )
        shipped = dict(payload)
        if slice_bytes is not None:
            # The number that gated admission also bounds execution.
            shipped["memory_budget_bytes"] = int(slice_bytes)
        request_id = self._next_request_id
        self._next_request_id += 1
        charged = 0
        if budget is not None:
            charged = budget if slice_bytes is None else slice_bytes
        self._pending[request_id] = charged
        self._admitted_bytes += charged
        deadline_seconds = shipped.get("deadline_seconds")
        if deadline_seconds is None:
            deadline_seconds = self.default_deadline_seconds
        max_attempts = shipped.get("max_attempts")
        if max_attempts is None:
            max_attempts = self.default_max_attempts
        state = _RequestState(shipped, int(max_attempts), deadline_seconds)
        self.metrics.counter("requests_admitted").inc()
        if self.trace is not None:
            trace_req = shipped.get("trace")
            if isinstance(trace_req, Mapping) and trace_req.get("id") is not None:
                state.trace_id = trace_req["id"]
            else:
                state.trace_id = f"req-{request_id}"
                # Ship a trace request so the worker records and returns
                # per-plan-node kernel spans for this id.
                shipped["trace"] = {"id": state.trace_id}
        now = time.monotonic()
        state.submitted_at = admission_started
        state.enqueued_at = now
        if self.trace is not None:
            self.trace.add_span(
                "admission",
                "serving",
                admission_started,
                now,
                trace_id=state.trace_id,
                attrs={"request": request_id, "slice_bytes": charged},
            )
        self._requests[request_id] = state
        self._backlog.append([0.0, request_id])
        self._service(block=False)
        return request_id

    def collect(self, request_id: int, timeout: Optional[float] = None) -> Dict[str, object]:
        """The response for one admitted request (blocks until resolved).

        Releases the request's admitted memory slice.  Worker deaths,
        injected faults and per-attempt deadlines resolve the request to
        an ``"error"`` record rather than raising -- :class:`ServingError`
        here means the pool never started properly, the id is unknown, or
        the *caller's* ``timeout`` expired.  A caller timeout releases the
        admission slice and marks the request expired, so a late response
        is drained, never misdelivered to a later request.
        """
        if request_id not in self._requests and request_id not in self._results:
            raise ServingError(f"unknown or already-collected request {request_id}")
        if self._broken:
            raise ServingError(f"serving pool is broken: {self._broken}")
        deadline = None if timeout is None else time.monotonic() + timeout
        while request_id not in self._results:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            self._service(block=True, wait_limit=remaining)
            if request_id in self._results:
                break
            if deadline is not None and time.monotonic() > deadline:
                self._expire(request_id)
                raise ServingError(
                    f"request {request_id} not answered within {timeout}s; "
                    "its admission slice was released and any late response "
                    "will be discarded"
                )
        return self._finish_collect(request_id)

    def _finish_collect(self, request_id: int) -> Dict[str, object]:
        """Hand a resolved result to the caller: release the admission
        slice and attach the scheduling provenance block."""
        state = self._requests.pop(request_id, None)
        self._admitted_bytes -= self._pending.pop(request_id, 0)
        response = dict(self._results.pop(request_id))
        response[PROVENANCE_KEY] = {
            "attempts": state.attempts if state is not None else 0,
            "restarts": self.restarts,
        }
        return response

    def try_collect(self, request_id: int) -> Optional[Dict[str, object]]:
        """Non-blocking :meth:`collect`: pump the supervisor once and
        return the response if the request has resolved, else ``None``
        (the request stays admitted).  Raises :class:`ServingError` for an
        unknown/already-collected id or a broken pool, exactly like
        :meth:`collect`.  This is the poll the daemon's dispatcher thread
        uses to multiplex many connections over one pool without blocking
        any of them on another's request."""
        if request_id not in self._requests and request_id not in self._results:
            raise ServingError(f"unknown or already-collected request {request_id}")
        if self._broken:
            raise ServingError(f"serving pool is broken: {self._broken}")
        self._service(block=False)
        if request_id not in self._results:
            return None
        return self._finish_collect(request_id)

    def service(self, timeout: float = 0.0) -> None:
        """Pump the supervisor once without collecting anything: drain
        worker responses, reap/respawn the dead, fire deadlines, dispatch
        the backlog.  ``timeout > 0`` blocks up to that long for worker
        traffic or the next internal timer first -- the daemon's
        dispatcher calls this between connection commands so supervision
        (crash recovery, deadline firing) advances even while no caller
        is blocked in :meth:`collect`."""
        self._service(block=timeout > 0, wait_limit=timeout if timeout > 0 else None)

    def abandon(self, request_id: int) -> None:
        """Give up on an admitted request whose caller is gone (e.g. the
        daemon connection that submitted it disconnected): release its
        admission slice immediately and mark the id expired so a late
        response is drained, never misdelivered.  Idempotent; unknown or
        already-collected ids are a no-op -- the caller vanishing twice
        must not break the pool."""
        if request_id in self._requests or request_id in self._results:
            self._expire(request_id)

    def run(self, payloads: Sequence[Mapping]) -> List[Dict[str, object]]:
        """Serve a batch: submit everything (waiting out backpressure by
        collecting), return responses in submission order.

        Never raises away completed work: a submission the degraded pool
        refuses becomes a per-request ``"error"`` record in its slot, so
        a batch that outlives the restart budget yields partial results.
        """
        ids: List[Optional[int]] = []
        responses: Dict[int, Dict[str, object]] = {}
        refused: Dict[int, Dict[str, object]] = {}  # position -> error record
        for position, payload in enumerate(payloads):
            while True:
                try:
                    ids.append(self.submit(payload))
                    break
                except AdmissionRejected:
                    uncollected = [
                        rid for rid in ids if rid is not None and rid not in responses
                    ]
                    if not uncollected:
                        raise  # cannot ever fit: surface the rejection
                    oldest = min(uncollected)
                    responses[oldest] = self.collect(oldest)
                except ServingError as exc:
                    refused[position] = {
                        "status": "error",
                        "error": f"request not admitted: {exc}",
                        PROVENANCE_KEY: {"attempts": 0, "restarts": self.restarts},
                    }
                    ids.append(None)
                    break
        for request_id in ids:
            if request_id is not None and request_id not in responses:
                responses[request_id] = self.collect(request_id)
        return [
            refused[position] if request_id is None else responses[request_id]
            for position, request_id in enumerate(ids)
        ]


# ----------------------------------------------------------------------
# Warm-up: statistics refresh + plan-cache pre-warming.
# ----------------------------------------------------------------------


def prewarm(
    database: Database,
    queries: Sequence[ConjunctiveQuery],
    *,
    k_values: Sequence[int] = (2, 3, 4),
    plan_cache: Optional[PlanCache] = None,
    completion: str = "fresh",
    analyze: bool = False,
    budget: Optional[int] = None,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    answer: str = "rows",
) -> List[Dict[str, object]]:
    """Plan the known query set once and return ready-to-ship payloads.

    For each query the best structural plan over ``k_values`` wins (by
    estimated cost, smallest ``k`` breaking ties -- the planner's own
    preference); a query no ``k`` admits falls back to the baseline
    join-order plan.  All planning goes through ``plan_cache`` when given,
    so a *second* prewarm over an unchanged store replays stored plans and
    every returned payload reports ``planning_seconds == 0.0`` -- the
    steady-state the serving bench measures.  ``analyze=True`` refreshes
    the statistics catalog first (which changes the statistics digest and
    thereby invalidates stale cache entries, never replaying plans against
    outdated cardinalities).
    """
    # Planner imports stay lazy: db.serving must not pull the planner layer
    # in at import time (layering: planner -> db, not db -> planner).
    from repro.exceptions import PlanningError
    from repro.planner.compare import _cached_baseline_plan, _cached_structural_plan
    from repro.planner.cost_k_decomp import planning_family

    if analyze:
        database.analyze()
    statistics = database.statistics
    payloads: List[Dict[str, object]] = []
    for query in queries:
        # One shared CostPlanningFamily per query (memoised: built only if
        # some k actually misses the cache), matching compare_planners.
        shared: list = []

        def family_factory(query=query, shared=shared):
            if not shared:
                shared.append(
                    planning_family(query, statistics, completion=completion)
                )
            return shared[0]

        best = None
        planning_seconds = 0.0
        for k in k_values:
            try:
                plan = _cached_structural_plan(
                    query, statistics, int(k), completion, family_factory, plan_cache
                )
            except PlanningError:
                continue
            planning_seconds += plan.planning_seconds
            if best is None or plan.estimated_cost < best.estimated_cost:
                best = plan
        if best is None:
            best = _cached_baseline_plan(query, statistics, plan_cache)
            planning_seconds += best.planning_seconds
        payload = plan_to_payload(
            best,
            budget=budget,
            threads=threads,
            memory_budget_bytes=memory_budget_bytes,
            answer=answer,
        )
        payload["planning_seconds"] = planning_seconds
        payloads.append(payload)
    return payloads
