"""Process-parallel serving plane: an mmap-shared worker pool with
budget-aware admission and plan-replay warm-up.

The storage plane (:mod:`repro.db.storage`) already lets any number of
processes ``Database.open()`` one stored workload and map every column
file read-only with ``np.memmap`` -- one physical copy of the data, no
column pickling, page cache shared by the kernel.  This module builds the
serving tier on top of that property:

**Wire format.**  A request is a compact JSON-safe *payload* -- the query
fingerprint (:func:`~repro.db.storage.query_fingerprint`: atom names,
predicates, term tuples, output variables) plus a plan in the PlanCache's
stored format (``{"kind": "join_order", "order": [...]}`` or ``{"kind":
"hypertree", "decomposition": <decomposition_to_payload(...)>}``) plus the
execution knobs (``budget``, ``threads``, ``memory_budget_bytes``) and the
answer mode (``"rows"`` ships decoded rows, ``"digest"`` a SHA-256 over
the canonical answer rendering).  No pickled plan object, column or
relation ever crosses the process boundary; a payload round-trips through
``json.dumps`` unchanged.  Responses carry the answer (or digest), the
cardinality and the :meth:`ExecutionResult.stats_payload` work counters.

**Determinism.**  Worker processes run :func:`execute_payload` -- the very
function the serial oracle runs in-process.  The payload rebuilds the
query with :func:`query_from_payload`, the plan IR with
:func:`~repro.db.plan_ir.plan_ir_from_payload` (hypertree payloads
reconstruct against the *original* query hypergraph, exactly the
plan-cache replay path), and executes on the shared kernels.  Because
answers, row order and every :meth:`stats_payload` field are functions of
(store bytes, payload) alone -- pinned by the storage and serving
Hypothesis suites -- a pooled response is byte-identical to the serial
in-process response, worker count and scheduling notwithstanding.  A
budget abort is equally deterministic at ``threads == 1``: the response
reports ``work_so_far`` and abort-time counters equal to the serial
abort's.

**Admission.**  :meth:`ServingPool.submit` admits a request under a slice
of the pool's global memory budget: the payload's own
``memory_budget_bytes`` if set, else the pool's per-query default.  The
sum of admitted slices never exceeds ``global_memory_budget_bytes`` and
at most ``max_pending`` requests may be in flight, so a burst of heavy
joins degrades to :class:`AdmissionRejected` backpressure (callers
re-submit after collecting) instead of memory exhaustion.  The admitted
slice is written into the payload, so the same number that gated
admission also bounds the kernels' transient allocations during
execution.

**Failure.**  The pool honours the scheduler's first-error contract
(:mod:`repro.db.scheduler`): a worker that raises reports an ``"error"``
response for that request only; a worker *process* that dies mid-query
breaks the pool -- :meth:`collect` raises :class:`ServingError`, queued
requests are not dispatched, and the first detected death is the error
surfaced.

**Warm-up.**  :func:`prewarm` refreshes statistics (optionally) and runs
the planner once per (query, k) through a :class:`PlanCache`, returning
ready-to-ship payloads.  A second prewarm over the same cache replays
stored plans and reports ``planning_seconds == 0.0`` on every payload, so
steady-state serving does no planning at all.
"""

from __future__ import annotations

import os
import queue
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.db.database import Database
from repro.db.executor import execute_plan
from repro.db.plan_ir import plan_ir_from_payload
from repro.db.storage import (
    PlanCache,
    canonical_digest,
    decomposition_to_payload,
    query_fingerprint,
    store_digest,
)
from repro.exceptions import DatabaseError
from repro.query.atoms import Atom
from repro.query.conjunctive import ConjunctiveQuery

#: Wire-format marker + version carried by every serving payload.  Workers
#: reject payloads they do not understand instead of guessing -- the same
#: policy as the storage format.
SERVING_FORMAT = "repro-serving"
SERVING_VERSION = 1

#: Environment override for the multiprocessing start method ("fork" by
#: default where available: workers then inherit the imported modules and
#: start in milliseconds; "spawn"/"forkserver" work identically, just
#: slower to boot, because workers share nothing but the store path).
MP_CONTEXT_ENV = "REPRO_SERVE_MP_CONTEXT"

_ANSWER_MODES = ("rows", "digest")

#: How long (seconds) collect()/startup wait between liveness checks.  Only
#: a latency knob: correctness never depends on it.
_POLL_SECONDS = 0.1


class ServingError(DatabaseError):
    """The serving pool is broken: a worker process died, disagreed about
    the store content, or spoke the wrong protocol."""


class AdmissionRejected(DatabaseError):
    """Backpressure: the request was *not* admitted (queue full, or its
    memory slice does not fit the remaining global budget).  Re-submit
    after collecting responses; nothing was partially executed."""


# ----------------------------------------------------------------------
# Wire format: queries, plans, execution.
# ----------------------------------------------------------------------


def query_to_payload(query: ConjunctiveQuery) -> Dict[str, object]:
    """The JSON-safe query wire format -- exactly the structural
    fingerprint the caches key on, so one rendering serves both."""
    return query_fingerprint(query)


def query_from_payload(payload: Mapping) -> ConjunctiveQuery:
    """Rebuild a query from :func:`query_to_payload` output."""
    try:
        atoms = tuple(
            Atom(str(name), str(predicate), tuple(str(t) for t in terms))
            for name, predicate, terms in payload["atoms"]
        )
        return ConjunctiveQuery(
            atoms=atoms,
            output_variables=tuple(str(v) for v in payload["output"]),
            name=str(payload.get("name", "Q")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatabaseError(f"malformed query payload: {exc!r}") from exc


def plan_to_payload(
    plan,
    *,
    budget: Optional[int] = None,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    answer: str = "rows",
) -> Dict[str, object]:
    """One complete serving payload for a planned query.

    ``plan`` is a :class:`~repro.planner.plans.HypertreePlan` or
    :class:`~repro.planner.plans.JoinOrderPlan`; its decomposition /
    join order serialises through the PlanCache's payload format.
    ``planning_seconds`` rides along for reporting only (``0.0`` when the
    plan came out of a warm cache) -- workers never read it.
    """
    if answer not in _ANSWER_MODES:
        raise DatabaseError(
            f"unknown answer mode {answer!r}; expected one of {_ANSWER_MODES}"
        )
    if hasattr(plan, "decomposition"):
        plan_meta: Dict[str, object] = {
            "kind": "hypertree",
            "decomposition": decomposition_to_payload(plan.decomposition),
        }
    elif hasattr(plan, "order"):
        plan_meta = {"kind": "join_order", "order": list(plan.order)}
    else:
        raise DatabaseError(
            f"cannot serialise plan of type {type(plan).__name__}"
        )
    payload: Dict[str, object] = {
        "format": SERVING_FORMAT,
        "version": SERVING_VERSION,
        "query": query_to_payload(plan.query),
        "plan": plan_meta,
        "answer": answer,
        "planning_seconds": float(plan.planning_seconds),
    }
    if budget is not None:
        payload["budget"] = int(budget)
    if threads is not None:
        payload["threads"] = int(threads)
    if memory_budget_bytes is not None:
        payload["memory_budget_bytes"] = int(memory_budget_bytes)
    return payload


def _check_payload(payload: Mapping) -> None:
    if not isinstance(payload, Mapping):
        raise DatabaseError(f"serving payload must be a mapping, got {payload!r}")
    if payload.get("format") != SERVING_FORMAT:
        raise DatabaseError(
            f"payload has format marker {payload.get('format')!r}, "
            f"expected {SERVING_FORMAT!r}"
        )
    if payload.get("version") != SERVING_VERSION:
        raise DatabaseError(
            f"payload is serving-format version {payload.get('version')!r}; "
            f"this build speaks version {SERVING_VERSION}"
        )
    if payload.get("answer", "rows") not in _ANSWER_MODES:
        raise DatabaseError(
            f"unknown answer mode {payload.get('answer')!r}; "
            f"expected one of {_ANSWER_MODES}"
        )


def answer_digest(result_payload: Mapping) -> str:
    """Content digest of a response's answer: canonical JSON over the
    attributes and rows (or the Boolean verdict).  Stable across engines,
    encodings and worker counts because the rows themselves are."""
    if result_payload.get("boolean") is not None:
        return canonical_digest({"boolean": result_payload["boolean"]})
    return canonical_digest(
        {
            "attributes": list(result_payload.get("attributes", ())),
            "rows": [list(row) for row in result_payload.get("rows", ())],
        }
    )


def execute_payload(payload: Mapping, database: Database) -> Dict[str, object]:
    """Run one serving payload against an open database and render the
    response payload.

    This single function is both the worker loop's body and the serial
    in-process oracle the test suites compare against -- by construction
    the pool cannot drift from the oracle.  A budget abort is a normal
    response (``status == "budget_exceeded"``) carrying the deterministic
    abort counters; only protocol violations raise.
    """
    from repro.db.algebra import EvaluationBudgetExceeded

    _check_payload(payload)
    query = query_from_payload(payload["query"])
    plan_ir = plan_ir_from_payload(query, payload["plan"])
    answer_mode = payload.get("answer", "rows")
    try:
        result = execute_plan(
            plan_ir,
            database,
            budget=payload.get("budget"),
            threads=payload.get("threads"),
            memory_budget_bytes=payload.get("memory_budget_bytes"),
        )
    except EvaluationBudgetExceeded as exc:
        return {
            "status": "budget_exceeded",
            "query": query.name,
            "work_so_far": exc.work_so_far,
            "budget": exc.budget,
        }
    response: Dict[str, object] = {
        "status": "ok",
        "query": query.name,
        "boolean": result.boolean,
        "cardinality": result.cardinality,
        "stats": result.stats_payload(),
    }
    rows = result.answer_rows()
    if rows is not None:
        response["attributes"] = list(result.relation.attributes)
    if answer_mode == "rows":
        if rows is not None:
            response["rows"] = rows
    else:
        probe = dict(response)
        if rows is not None:
            probe["rows"] = rows
        response["digest"] = answer_digest(probe)
    return response


def aggregate_stats(responses: Iterable[Mapping]) -> Dict[str, object]:
    """Fold the ``stats`` payloads of many responses into one: counters
    sum, peaks max -- the same commutative merge
    :class:`~repro.db.algebra.OperatorStats` uses across threads, so the
    aggregate over any partition of a workload is partition-independent."""
    totals: Dict[str, int] = {}
    operations: Dict[str, int] = {}
    peak = 0
    for response in responses:
        stats = response.get("stats")
        if not stats:
            continue
        for key, value in stats.items():
            if key == "operations":
                for op, count in value.items():
                    operations[op] = operations.get(op, 0) + int(count)
            elif key == "peak_transient_elements":
                peak = max(peak, int(value))
            else:
                totals[key] = totals.get(key, 0) + int(value)
    totals["operations"] = {key: operations[key] for key in sorted(operations)}
    totals["peak_transient_elements"] = peak
    return totals


# ----------------------------------------------------------------------
# The worker process.
# ----------------------------------------------------------------------


def _store_report(database: Database) -> Dict[str, object]:
    """What a worker tells the pool about the store it opened: the catalog
    content digest (all workers must agree) and how many of its columns
    arrived as read-only ``np.memmap`` views (the bench asserts this is
    every column -- shared pages, not pickled copies)."""
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - row-engine fallback
        np = None
    total_columns = 0
    mmap_columns = 0
    for name in database.relation_names():
        relation = database.relation(name)
        columns = list(getattr(relation, "_columns", ()))
        selection = getattr(relation, "_selection", None)
        if selection is not None:
            columns.append(selection)
        for column in columns:
            total_columns += 1
            if np is not None and isinstance(column, np.memmap):
                mmap_columns += 1
    return {
        "pid": os.getpid(),
        "store_digest": store_digest(database.source_path),
        "relations": len(list(database.relation_names())),
        "total_columns": total_columns,
        "mmap_columns": mmap_columns,
    }


def _worker_main(worker_id, store_path, request_queue, response_queue, options):
    """Worker loop: open the store once, then serve payloads until told to
    stop.  Runs in a child process; communicates only via the two queues.
    Top-level (not nested) so ``spawn``-style contexts can import it."""
    try:
        database = Database.open(
            store_path,
            columnar=options.get("columnar", True),
            threads=options.get("threads"),
            memory_budget_bytes=options.get("memory_budget_bytes"),
        )
        response_queue.put(("hello", worker_id, _store_report(database)))
    except BaseException as exc:  # noqa: BLE001 - must report, not vanish
        response_queue.put(("fatal", worker_id, repr(exc)))
        return
    while True:
        message = request_queue.get()
        if message[0] == "stop":
            response_queue.put(("bye", worker_id, None))
            return
        _, request_id, payload = message
        try:
            result = execute_payload(payload, database)
        except Exception as exc:  # noqa: BLE001 - ship the error, keep serving
            result = {"status": "error", "error": repr(exc)}
        response_queue.put(("result", worker_id, request_id, result))


# ----------------------------------------------------------------------
# The pool.
# ----------------------------------------------------------------------


class ServingPool:
    """A pool of worker processes serving one stored database.

    Parameters
    ----------
    store_path:
        Directory of a stored database (:meth:`Database.save` output).
        Every worker ``Database.open()``'s it independently; the pool
        checks all workers report the same catalog content digest.
    workers:
        Number of worker processes.
    global_memory_budget_bytes:
        Cap on the *sum* of admitted requests' memory slices.  ``None``
        disables budget-based admission (queue-length backpressure still
        applies).
    default_memory_budget_bytes:
        Slice charged to (and written into) a payload that does not set
        its own ``memory_budget_bytes``.  ``None`` means an unbudgeted
        payload claims the whole global budget -- heavy strangers
        serialise instead of overcommitting.
    max_pending:
        Most requests admitted but not yet collected.  Defaults to
        ``4 * workers``.
    mp_context:
        ``multiprocessing`` start-method name; defaults to
        ``REPRO_SERVE_MP_CONTEXT`` or ``"fork"`` where available.
    worker_threads / worker_memory_budget_bytes / columnar:
        Execution knobs each worker opens its database with (a payload's
        own knobs still override per request, exactly as in-process).
    startup_timeout:
        Seconds to wait for every worker's hello before declaring the
        pool broken.
    """

    def __init__(
        self,
        store_path,
        workers: int = 2,
        *,
        global_memory_budget_bytes: Optional[int] = None,
        default_memory_budget_bytes: Optional[int] = None,
        max_pending: Optional[int] = None,
        mp_context: Optional[str] = None,
        worker_threads: Optional[int] = None,
        worker_memory_budget_bytes: Optional[int] = None,
        columnar: bool = True,
        startup_timeout: float = 60.0,
    ) -> None:
        import multiprocessing as mp

        self.store_path = str(store_path)
        self.workers = max(1, int(workers))
        self.global_memory_budget_bytes = global_memory_budget_bytes
        self.default_memory_budget_bytes = default_memory_budget_bytes
        self.max_pending = (
            4 * self.workers if max_pending is None else max(1, int(max_pending))
        )
        if mp_context is None:
            mp_context = os.environ.get(MP_CONTEXT_ENV, "").strip() or None
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else None
        context = mp.get_context(mp_context)
        self._request_queue = context.Queue()
        self._response_queue = context.Queue()
        self._processes = []
        self._next_request_id = 0
        self._pending: Dict[int, int] = {}  # request id -> admitted slice
        self._admitted_bytes = 0
        self._results: Dict[int, Dict[str, object]] = {}
        self._broken: Optional[str] = None
        self._closed = False
        self.worker_reports: Dict[int, Dict[str, object]] = {}
        options = {
            "columnar": columnar,
            "threads": worker_threads,
            "memory_budget_bytes": worker_memory_budget_bytes,
        }
        for worker_id in range(self.workers):
            process = context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    self.store_path,
                    self._request_queue,
                    self._response_queue,
                    options,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        self._await_hellos(startup_timeout)

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ServingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _await_hellos(self, timeout: float) -> None:
        import time

        deadline = time.monotonic() + timeout
        while len(self.worker_reports) < self.workers:
            try:
                message = self._response_queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                self._check_alive()
                if time.monotonic() > deadline:
                    self._fail(
                        f"workers did not report within {timeout:.0f}s "
                        f"({len(self.worker_reports)}/{self.workers} hellos)"
                    )
                continue
            if message[0] == "fatal":
                self._fail(f"worker {message[1]} failed to open the store: {message[2]}")
            if message[0] != "hello":
                self._fail(f"protocol violation during startup: {message!r}")
            self.worker_reports[message[1]] = message[2]
        digests = {report["store_digest"] for report in self.worker_reports.values()}
        if len(digests) != 1:
            self._fail(f"workers opened differing stores: digests {sorted(digests)}")

    def _fail(self, reason: str):
        self._broken = reason
        self.close()
        raise ServingError(f"serving pool over {self.store_path!r} broken: {reason}")

    def _check_alive(self) -> None:
        for worker_id, process in enumerate(self._processes):
            if not process.is_alive() and process.exitcode != 0:
                self._fail(
                    f"worker {worker_id} (pid {process.pid}) died with "
                    f"exit code {process.exitcode}"
                )

    def close(self) -> None:
        """Stop every worker and reap the processes.  Idempotent; called
        automatically on context-manager exit and on pool breakage."""
        if self._closed:
            return
        self._closed = True
        for process in self._processes:
            if process.is_alive():
                try:
                    self._request_queue.put(("stop",))
                except (OSError, ValueError):  # pragma: no cover - queue gone
                    break
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)

    # -- admission and dispatch ----------------------------------------
    def _admission_slice(self, payload: Mapping) -> Optional[int]:
        slice_bytes = payload.get("memory_budget_bytes")
        if slice_bytes is None:
            slice_bytes = self.default_memory_budget_bytes
        if slice_bytes is None:
            # Unbudgeted request under a global budget: claim it all, so
            # it runs alone rather than overcommitting the budget.
            return self.global_memory_budget_bytes
        return int(slice_bytes)

    def submit(self, payload: Mapping) -> int:
        """Admit one payload and dispatch it to the pool.

        Returns the request id (collect order is the submission order).
        Raises :class:`AdmissionRejected` -- without side effects -- when
        the pending queue is full or the payload's memory slice does not
        fit the remaining global budget; and :class:`ServingError` when
        the pool is broken or closed.
        """
        if self._broken:
            raise ServingError(f"serving pool is broken: {self._broken}")
        if self._closed:
            raise ServingError("serving pool is closed")
        _check_payload(payload)
        if len(self._pending) >= self.max_pending:
            raise AdmissionRejected(
                f"{len(self._pending)} requests pending (max {self.max_pending}); "
                "collect responses before submitting more"
            )
        slice_bytes = self._admission_slice(payload)
        budget = self.global_memory_budget_bytes
        if budget is not None:
            needed = budget if slice_bytes is None else slice_bytes
            if needed > budget:
                raise AdmissionRejected(
                    f"request needs a {needed:,}-byte memory slice; the "
                    f"global budget is {budget:,} bytes"
                )
            if self._admitted_bytes + needed > budget:
                raise AdmissionRejected(
                    f"admitting a {needed:,}-byte slice would exceed the "
                    f"global budget ({self._admitted_bytes:,} of {budget:,} "
                    "bytes already admitted); collect responses first"
                )
        shipped = dict(payload)
        if slice_bytes is not None:
            # The number that gated admission also bounds execution.
            shipped["memory_budget_bytes"] = int(slice_bytes)
        request_id = self._next_request_id
        self._next_request_id += 1
        charged = 0
        if budget is not None:
            charged = budget if slice_bytes is None else slice_bytes
        self._pending[request_id] = charged
        self._admitted_bytes += charged
        self._request_queue.put(("run", request_id, shipped))
        return request_id

    def collect(self, request_id: int, timeout: Optional[float] = None) -> Dict[str, object]:
        """The response for one admitted request (blocks until it arrives).

        Releases the request's admitted memory slice.  Raises
        :class:`ServingError` if a worker process dies before the response
        arrives (first detected death wins; queued requests are then never
        dispatched -- the scheduler's first-error contract).
        """
        import time

        if request_id not in self._pending and request_id not in self._results:
            raise ServingError(f"unknown or already-collected request {request_id}")
        deadline = None if timeout is None else time.monotonic() + timeout
        while request_id not in self._results:
            if self._broken:
                raise ServingError(f"serving pool is broken: {self._broken}")
            try:
                message = self._response_queue.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                self._check_alive()
                if deadline is not None and time.monotonic() > deadline:
                    raise ServingError(
                        f"request {request_id} not answered within {timeout}s"
                    )
                continue
            if message[0] == "result":
                _, _, answered_id, result = message
                self._results[answered_id] = result
            elif message[0] == "fatal":
                self._fail(f"worker {message[1]} failed: {message[2]}")
        self._admitted_bytes -= self._pending.pop(request_id, 0)
        return self._results.pop(request_id)

    def run(self, payloads: Sequence[Mapping]) -> List[Dict[str, object]]:
        """Serve a batch: submit everything (waiting out backpressure by
        collecting), return responses in submission order."""
        ids: List[int] = []
        responses: Dict[int, Dict[str, object]] = {}
        for payload in payloads:
            while True:
                try:
                    ids.append(self.submit(payload))
                    break
                except AdmissionRejected:
                    if not self._pending:
                        raise  # cannot ever fit: surface the rejection
                    oldest = min(self._pending)
                    responses[oldest] = self.collect(oldest)
        for request_id in ids:
            if request_id not in responses:
                responses[request_id] = self.collect(request_id)
        return [responses[request_id] for request_id in ids]


# ----------------------------------------------------------------------
# Warm-up: statistics refresh + plan-cache pre-warming.
# ----------------------------------------------------------------------


def prewarm(
    database: Database,
    queries: Sequence[ConjunctiveQuery],
    *,
    k_values: Sequence[int] = (2, 3, 4),
    plan_cache: Optional[PlanCache] = None,
    completion: str = "fresh",
    analyze: bool = False,
    budget: Optional[int] = None,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    answer: str = "rows",
) -> List[Dict[str, object]]:
    """Plan the known query set once and return ready-to-ship payloads.

    For each query the best structural plan over ``k_values`` wins (by
    estimated cost, smallest ``k`` breaking ties -- the planner's own
    preference); a query no ``k`` admits falls back to the baseline
    join-order plan.  All planning goes through ``plan_cache`` when given,
    so a *second* prewarm over an unchanged store replays stored plans and
    every returned payload reports ``planning_seconds == 0.0`` -- the
    steady-state the serving bench measures.  ``analyze=True`` refreshes
    the statistics catalog first (which changes the statistics digest and
    thereby invalidates stale cache entries, never replaying plans against
    outdated cardinalities).
    """
    # Planner imports stay lazy: db.serving must not pull the planner layer
    # in at import time (layering: planner -> db, not db -> planner).
    from repro.exceptions import PlanningError
    from repro.planner.compare import _cached_baseline_plan, _cached_structural_plan
    from repro.planner.cost_k_decomp import planning_family

    if analyze:
        database.analyze()
    statistics = database.statistics
    payloads: List[Dict[str, object]] = []
    for query in queries:
        # One shared CostPlanningFamily per query (memoised: built only if
        # some k actually misses the cache), matching compare_planners.
        shared: list = []

        def family_factory(query=query, shared=shared):
            if not shared:
                shared.append(
                    planning_family(query, statistics, completion=completion)
                )
            return shared[0]

        best = None
        planning_seconds = 0.0
        for k in k_values:
            try:
                plan = _cached_structural_plan(
                    query, statistics, int(k), completion, family_factory, plan_cache
                )
            except PlanningError:
                continue
            planning_seconds += plan.planning_seconds
            if best is None or plan.estimated_cost < best.estimated_cost:
                best = plan
        if best is None:
            best = _cached_baseline_plan(query, statistics, plan_cache)
            planning_seconds += best.planning_seconds
        payload = plan_to_payload(
            best,
            budget=budget,
            threads=threads,
            memory_budget_bytes=memory_budget_bytes,
            answer=answer,
        )
        payload["planning_seconds"] = planning_seconds
        payloads.append(payload)
    return payloads
