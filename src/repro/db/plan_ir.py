"""A shared plan-node IR for both plan shapes.

The paper compares two plan families -- the baseline's left-deep join
orders and cost-k-decomp's hypertree plans -- and the comparison is only
fair if both execute on the *identical* kernels.  This module gives them a
common intermediate representation: a small tree of plan nodes that
:func:`repro.db.executor.execute_plan` interprets against a database,
routing every operator through :mod:`repro.db.algebra` (and hence through
the columnar kernels whenever the database is columnar).

Nodes
-----
* :class:`ScanNode` -- bind one query atom (memoised per atom, as
  ``bind_query`` did);
* :class:`JoinNode` -- natural-join the inputs left-to-right;
  ``smallest_first`` re-orders them by runtime cardinality first (the
  per-node expression discipline of ``E(p)``);
* :class:`ProjectNode` -- ``Π`` with optional duplicate elimination;
* :class:`YannakakisNode` -- evaluate per-node expressions, assemble the
  acyclic tree query and run Yannakakis' algorithm over it.

The builders :func:`join_order_plan_ir` and :func:`hypertree_plan_ir`
reproduce, operator for operator, the exact sequences the historical
``naive_join_evaluation`` / ``execute_hypertree_plan`` performed, so
``OperatorStats`` work counts are unchanged.

Task extraction
---------------
For the parallel execution plane, :func:`yannakakis_task_dag` walks a
:class:`YannakakisNode` into the dependency DAG of its per-subtree tasks
(expression evaluation, both semijoin passes, the join fold) and
:func:`join_input_task_dag` does the same for the independent inputs of a
:class:`JoinNode`.  The specs carry keys and dependencies only -- the
executor supplies the callables -- and are emitted in the serial engine's
canonical order, so running them in list order *is* the serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.exceptions import DatabaseError
from repro.query.conjunctive import ConjunctiveQuery, is_fresh_variable

PlanNode = Union["ScanNode", "JoinNode", "ProjectNode", "YannakakisNode"]


@dataclass(frozen=True)
class ScanNode:
    """Bind one query atom (by atom name) against the database."""

    atom_name: str


@dataclass(frozen=True)
class JoinNode:
    """Natural join of the inputs, folded left-to-right.

    With ``smallest_first`` the evaluated inputs are joined in ascending
    order of runtime cardinality (stable, so ties keep the input order) --
    the default order for the handful of relations in a λ label.
    """

    inputs: Tuple[PlanNode, ...]
    smallest_first: bool = False


@dataclass(frozen=True)
class ProjectNode:
    """``Π_attributes`` over the input plan."""

    input: PlanNode
    attributes: Tuple[str, ...]
    distinct: bool = True
    name: Optional[str] = None


@dataclass(frozen=True)
class YannakakisNode:
    """Evaluate one plan per decomposition node, then run Yannakakis.

    ``children`` and ``expressions`` are (id, value) tuples rather than
    dicts so the node stays hashable; their order is the evaluation order.
    For a Boolean query only the bottom-up semijoin pass runs.
    """

    root: object
    children: Tuple[Tuple[object, Tuple[object, ...]], ...]
    expressions: Tuple[Tuple[object, PlanNode], ...]
    output_variables: Tuple[str, ...] = ()
    boolean: bool = False


@dataclass
class QueryPlanIR:
    """An executable plan: a node tree plus the query it answers."""

    query: ConjunctiveQuery
    root: PlanNode
    boolean: bool = False

    def execute(
        self,
        database,
        budget: Optional[int] = None,
        threads: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
        trace=None,
        trace_id=None,
    ):
        """Interpret the plan against ``database`` (see
        :func:`repro.db.executor.execute_plan`).

        ``memory_budget_bytes`` drives the adaptive morsel sizing of the
        chunked join kernels.  The resulting ``OperatorStats`` stay
        representation-blind: every work counter and
        ``peak_transient_elements`` are byte-identical across column
        encodings, thread counts and chunkings; only the dtype-aware
        ``peak_transient_bytes`` reflects the actual packed widths.
        ``trace``/``trace_id`` forward to the executor's span recorder
        (a write-only sidecar; results unchanged)."""
        from repro.db.executor import execute_plan

        return execute_plan(
            self,
            database,
            budget=budget,
            threads=threads,
            memory_budget_bytes=memory_budget_bytes,
            trace=trace,
            trace_id=trace_id,
        )


# ----------------------------------------------------------------------
# Task extraction: the dependency DAG of the parallel execution plane.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit: a key plus the keys it must wait for."""

    key: Tuple[str, object]
    deps: Tuple[Tuple[str, object], ...]


def _tree_orders(node: YannakakisNode):
    """BFS and post-order node id sequences of a YannakakisNode's tree."""
    children = {node_id: tuple(kids) for node_id, kids in node.children}
    bfs = [node.root]
    i = 0
    while i < len(bfs):
        bfs.extend(children.get(bfs[i], ()))
        i += 1
    post: list = []
    stack = [(node.root, False)]
    while stack:
        current, expanded = stack.pop()
        if expanded:
            post.append(current)
            continue
        stack.append((current, True))
        for kid in reversed(children.get(current, ())):
            stack.append((kid, False))
    return children, tuple(bfs), tuple(post)


def yannakakis_task_dag(node: YannakakisNode) -> Tuple[TaskSpec, ...]:
    """The per-subtree task DAG of one Yannakakis execution.

    Task kinds (``v`` ranges over decomposition nodes):

    * ``("expr", v)`` -- evaluate ``E(v)``; no dependencies.
    * ``("up", v)`` -- bottom-up pass at ``v``: semijoin ``v`` with each
      child; needs ``v``'s expression and every child's ``up``.
    * ``("down", v)`` (non-root, full reduction only) -- top-down pass:
      semijoin ``v`` with its parent's final relation; needs ``v``'s ``up``
      and the parent's own final task.
    * ``("fold", v)`` (non-Boolean only) -- join pass for the subtree at
      ``v``: fold every child's completed subtree into ``v``; needs ``v``'s
      final reduction and every child's ``fold``.

    Sibling subtrees share no dependency, which is exactly the parallelism
    the selection-vector representation makes safe.  Specs are emitted in
    the serial engine's evaluation order (expressions, bottom-up post-order,
    top-down BFS, fold post-order), so inline execution in list order
    reproduces the serial run.
    """
    children, bfs, post = _tree_orders(node)

    def final(node_id) -> Tuple[str, object]:
        """The task after which a node's reduced relation is final."""
        if node.boolean or node_id == node.root:
            return ("up", node_id)
        return ("down", node_id)

    specs = [TaskSpec(("expr", node_id), ()) for node_id, _ in node.expressions]
    for node_id in post:
        deps = (("expr", node_id),) + tuple(
            ("up", kid) for kid in children.get(node_id, ())
        )
        specs.append(TaskSpec(("up", node_id), deps))
    if node.boolean:
        return tuple(specs)
    for parent_id in bfs:
        for kid in children.get(parent_id, ()):
            specs.append(TaskSpec(("down", kid), (("up", kid), final(parent_id))))
    for node_id in post:
        deps = (final(node_id),) + tuple(
            ("fold", kid) for kid in children.get(node_id, ())
        )
        specs.append(TaskSpec(("fold", node_id), deps))
    return tuple(specs)


def join_input_task_dag(node: JoinNode) -> Tuple[TaskSpec, ...]:
    """The (trivially independent) tasks of a JoinNode's inputs: each input
    subplan may be evaluated concurrently; the join itself then folds the
    results in canonical order."""
    return tuple(TaskSpec(("input", i), ()) for i in range(len(node.inputs)))


def scan_order(node: PlanNode) -> Tuple[str, ...]:
    """Every atom name scanned under ``node``, in first-use order of the
    serial interpreter.  The parallel executor binds atoms in exactly this
    order *before* spawning tasks: binding may intern fresh-variable
    surrogates into the database's shared dictionary, which must stay
    single-threaded and deterministic."""
    seen: list = []
    seen_set = set()

    def visit(current) -> None:
        if isinstance(current, ScanNode):
            if current.atom_name not in seen_set:
                seen_set.add(current.atom_name)
                seen.append(current.atom_name)
        elif isinstance(current, JoinNode):
            for child in current.inputs:
                visit(child)
        elif isinstance(current, ProjectNode):
            visit(current.input)
        elif isinstance(current, YannakakisNode):
            for _, expression in current.expressions:
                visit(expression)

    visit(node)
    return tuple(seen)


# ----------------------------------------------------------------------
# Builders.
# ----------------------------------------------------------------------


def plan_ir_from_payload(query: ConjunctiveQuery, plan_meta) -> QueryPlanIR:
    """Rebuild an executable plan IR from a compact plan payload.

    ``plan_meta`` is the wire format the serving plane ships and the plan
    cache stores: ``{"kind": "join_order", "order": [...]}`` or ``{"kind":
    "hypertree", "decomposition": <decomposition_to_payload(...)>}`` (the
    PlanCache's decomposition-payload format -- no pickles, key-echoed).
    A malformed payload raises :class:`~repro.exceptions.StorageFormatError`
    (via the decomposition codec) or :class:`DatabaseError`.
    """
    try:
        kind = plan_meta["kind"]
    except (TypeError, KeyError) as exc:
        raise DatabaseError(f"plan payload has no kind: {plan_meta!r}") from exc
    if kind == "join_order":
        try:
            order = [str(name) for name in plan_meta["order"]]
        except (KeyError, TypeError) as exc:
            raise DatabaseError(
                f"malformed join-order plan payload: {plan_meta!r}"
            ) from exc
        return join_order_plan_ir(query, order)
    if kind == "hypertree":
        # Local import: repro.db.storage sits above this module in the
        # import graph (it pulls in the database layer).
        from repro.db.storage import decomposition_from_payload

        try:
            payload = plan_meta["decomposition"]
        except (KeyError, TypeError) as exc:
            raise DatabaseError(
                f"malformed hypertree plan payload: {plan_meta!r}"
            ) from exc
        decomposition = decomposition_from_payload(query.hypergraph(), payload)
        return hypertree_plan_ir(query, decomposition)
    raise DatabaseError(f"unknown plan payload kind {kind!r}")


def join_order_plan_ir(
    query: ConjunctiveQuery, order: Optional[Sequence[str]] = None
) -> QueryPlanIR:
    """The left-deep plan: join all bound atoms in ``order`` (textual order
    by default), then project onto the non-fresh output variables."""
    atom_names = {atom.name for atom in query.atoms}
    names = list(order) if order is not None else sorted(atom_names)
    unknown = [n for n in names if n not in atom_names]
    if unknown:
        raise DatabaseError(f"unknown atoms in join order: {unknown}")
    if set(names) != atom_names:
        raise DatabaseError("join order must mention every atom exactly once")
    joined = JoinNode(tuple(ScanNode(n) for n in names))
    if query.is_boolean:
        return QueryPlanIR(query=query, root=joined, boolean=True)
    wanted = tuple(v for v in query.output_variables if not is_fresh_variable(v))
    return QueryPlanIR(
        query=query,
        root=ProjectNode(joined, wanted, distinct=True, name="answer"),
        boolean=False,
    )


def hypertree_plan_ir(query: ConjunctiveQuery, decomposition) -> QueryPlanIR:
    """The structural plan: ``E(p) = Π_{χ(p)} ⋈_{h ∈ λ(p)} rel(h)`` per
    decomposition node, then Yannakakis over the resulting tree query."""
    atom_names = {atom.name for atom in query.atoms}
    expressions = []
    for node in decomposition.nodes():
        scans = []
        for edge_name in sorted(node.lambda_edges):
            if edge_name not in atom_names:
                raise DatabaseError(
                    f"decomposition uses edge {edge_name!r} which is not an atom "
                    f"of query {query.name!r}"
                )
            scans.append(ScanNode(edge_name))
        expressions.append(
            (
                node.node_id,
                ProjectNode(
                    JoinNode(tuple(scans), smallest_first=True),
                    tuple(sorted(node.chi)),
                    distinct=True,
                ),
            )
        )
    children = tuple(
        (node_id, tuple(decomposition.children(node_id)))
        for node_id in decomposition.node_ids()
    )
    boolean = query.is_boolean
    root = YannakakisNode(
        root=decomposition.root,
        children=children,
        expressions=tuple(expressions),
        output_variables=() if boolean else tuple(query.output_variables),
        boolean=boolean,
    )
    return QueryPlanIR(query=query, root=root, boolean=boolean)
