"""Value ↔ dense-integer interning for the columnar engine.

A :class:`Dictionary` is the data-plane sibling of
:class:`repro.core.vocabulary.Vocabulary`: it assigns consecutive integer
ids to *domain values* (the objects stored in relation tuples) so that a
column becomes a flat array of small ints and every equality test, hash
probe and distinct count runs on machine integers instead of arbitrary
Python objects.

Interning uses ordinary ``dict`` equality, so two values that compare equal
(``3 == 3.0``) share an id — exactly the equality the row-based operators
used, which keeps the columnar kernels answer-identical.  Dictionaries are
append-only: ids are never reused, so a decoded value is always the object
that was interned first, and decoding is a single list index ("decode once
per distinct id").

One :class:`Dictionary` is shared by every relation of a
:class:`repro.db.database.Database`, so columns of different relations are
directly comparable: a join or semijoin between two relations of the same
database never touches the values themselves.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence


class Dictionary:
    """An append-only interner mapping hashable domain values to dense ids."""

    __slots__ = ("_values", "_ids")

    def __init__(self, values: Iterable[Any] = ()) -> None:
        self._values: List[Any] = []
        self._ids: Dict[Any, int] = {}
        for value in values:
            self.encode(value)

    # ------------------------------------------------------------------
    def encode(self, value: Any) -> int:
        """The id of ``value``, assigning the next free id on first sight."""
        ids = self._ids
        index = ids.get(value)
        if index is None:
            index = len(self._values)
            ids[value] = index
            self._values.append(value)
        return index

    def encode_column(self, values: Iterable[Any]) -> List[int]:
        """Encode a whole column of values (interning as needed)."""
        ids = self._ids
        out: List[int] = []
        append = out.append
        values_list = self._values
        for value in values:
            index = ids.get(value)
            if index is None:
                index = len(values_list)
                ids[value] = index
                values_list.append(value)
            append(index)
        return out

    def id_of(self, value: Any) -> Optional[int]:
        """The id of an already-interned value, or ``None`` (no interning).

        Used for probe-side lookups (e.g. constants in query atoms): a value
        the database has never stored cannot match any row.
        """
        return self._ids.get(value)

    # ------------------------------------------------------------------
    def decode(self, index: int) -> Any:
        return self._values[index]

    @property
    def values(self) -> Sequence[Any]:
        """The id-indexed value list (read-only by convention); indexing it
        is the decode kernel the columnar accessors use."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: object) -> bool:
        return value in self._ids

    @property
    def key_width(self) -> int:
        """Bits needed to represent any current id (an upper bound for key
        packing; the kernels derive tighter widths from the ids actually
        present in their columns)."""
        return max(len(self._values), 1).bit_length()

    def __repr__(self) -> str:
        return f"Dictionary({len(self._values)} values)"
