"""Value ↔ dense-integer interning for the columnar engine.

A :class:`Dictionary` is the data-plane sibling of
:class:`repro.core.vocabulary.Vocabulary`: it assigns consecutive integer
ids to *domain values* (the objects stored in relation tuples) so that a
column becomes a flat array of small ints and every equality test, hash
probe and distinct count runs on machine integers instead of arbitrary
Python objects.

Interning uses ordinary ``dict`` equality, so two values that compare equal
(``3 == 3.0``) share an id — exactly the equality the row-based operators
used, which keeps the columnar kernels answer-identical.  Dictionaries are
append-only: ids are never reused, so a decoded value is always the object
that was interned first, and decoding is a single list index ("decode once
per distinct id").

One :class:`Dictionary` is shared by every relation of a
:class:`repro.db.database.Database`, so columns of different relations are
directly comparable: a join or semijoin between two relations of the same
database never touches the values themselves.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import StorageFormatError

#: Type tags of the persistence segments (see :meth:`Dictionary.to_segments`).
#: ``bool`` must be tested before ``int`` (it is an ``int`` subclass) so a
#: stored ``True`` decodes back to ``True``, not ``1``.
_SEGMENT_TYPES: Tuple[Tuple[str, type], ...] = (
    ("bool", bool),
    ("int", int),
    ("float", float),
    ("str", str),
)


class Dictionary:
    """An append-only interner mapping hashable domain values to dense ids."""

    __slots__ = ("_values", "_ids")

    def __init__(self, values: Iterable[Any] = ()) -> None:
        self._values: List[Any] = []
        self._ids: Dict[Any, int] = {}
        for value in values:
            self.encode(value)

    # ------------------------------------------------------------------
    def encode(self, value: Any) -> int:
        """The id of ``value``, assigning the next free id on first sight."""
        ids = self._ids
        index = ids.get(value)
        if index is None:
            index = len(self._values)
            ids[value] = index
            self._values.append(value)
        return index

    def encode_column(self, values: Iterable[Any]) -> List[int]:
        """Encode a whole column of values (interning as needed)."""
        ids = self._ids
        out: List[int] = []
        append = out.append
        values_list = self._values
        for value in values:
            index = ids.get(value)
            if index is None:
                index = len(values_list)
                ids[value] = index
                values_list.append(value)
            append(index)
        return out

    def id_of(self, value: Any) -> Optional[int]:
        """The id of an already-interned value, or ``None`` (no interning).

        Used for probe-side lookups (e.g. constants in query atoms): a value
        the database has never stored cannot match any row.
        """
        return self._ids.get(value)

    # ------------------------------------------------------------------
    def decode(self, index: int) -> Any:
        return self._values[index]

    def decode_ids(self, ids: Iterable[int], reference: int = 0) -> List[Any]:
        """Decode a batch of ids (optionally frame-of-reference offset).

        ``reference`` is the offset a packed column stores its ids relative
        to (see :mod:`repro.db.storage`); the true id of a stored value ``v``
        is ``v + reference``.  This is the single widening point where packed
        columns meet the value domain — the kernels themselves never decode.
        """
        if reference:
            values = self._values
            return [values[index + reference] for index in ids]
        return list(map(self._values.__getitem__, ids))

    @property
    def values(self) -> Sequence[Any]:
        """The id-indexed value list (read-only by convention); indexing it
        is the decode kernel the columnar accessors use."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: object) -> bool:
        return value in self._ids

    # ------------------------------------------------------------------
    # Persistence (the storage plane serialises dictionaries as typed
    # segments; see repro.db.storage).
    # ------------------------------------------------------------------
    def to_segments(self) -> List[Tuple[str, List[Any]]]:
        """The id-ordered value list as (type-tag, values) runs.

        Consecutive values of the same JSON-representable type are grouped
        into one segment, so the common case (a long run of ints, or of
        strings) stays compact and decoding is a straight concatenation that
        reproduces the exact id order.  Unicode strings, negative and
        arbitrarily large ints, floats, bools and ``None`` all round-trip
        exactly; any other value type raises :class:`StorageFormatError`
        (the on-disk format would not preserve it).
        """
        segments: List[Tuple[str, List[Any]]] = []
        for value in self._values:
            tag = None
            if value is None:
                tag = "none"
            else:
                for candidate, cls in _SEGMENT_TYPES:
                    if isinstance(value, cls):
                        tag = candidate
                        break
            if tag is None:
                raise StorageFormatError(
                    f"dictionary value {value!r} of type "
                    f"{type(value).__name__!r} cannot be stored; supported "
                    "types: int, str, float, bool, None"
                )
            if segments and segments[-1][0] == tag:
                segments[-1][1].append(value)
            else:
                segments.append((tag, [value]))
        return segments

    @classmethod
    def from_segments(cls, segments: Iterable[Sequence[Any]]) -> "Dictionary":
        """Rebuild a dictionary from :meth:`to_segments` output (ids are
        reassigned in order, hence identical to the saved ones)."""
        known = {tag for tag, _ in _SEGMENT_TYPES} | {"none"}
        decoders = {"bool": bool, "int": int, "float": float, "str": str}

        def values():
            for segment in segments:
                try:
                    tag, payload = segment[0], segment[1]
                except (IndexError, TypeError) as exc:
                    raise StorageFormatError(
                        f"malformed dictionary segment: {segment!r}"
                    ) from exc
                if tag not in known:
                    raise StorageFormatError(
                        f"unknown dictionary segment type {tag!r}"
                    )
                decode = decoders.get(tag)
                for value in payload:
                    yield None if tag == "none" else decode(value)

        return cls(values())

    @property
    def key_width(self) -> int:
        """Bits needed to represent any current id (an upper bound for key
        packing; the kernels derive tighter widths from the ids actually
        present in their columns)."""
        return max(len(self._values), 1).bit_length()

    def __repr__(self) -> str:
        return f"Dictionary({len(self._values)} values)"
