"""Head-to-head comparison harness: cost-k-decomp vs the quantitative-only
baseline.

This is the measurement core behind the Fig. 8 experiments: for a query, a
database and a set of width bounds, it

1. plans the query with the baseline left-deep optimiser and executes the
   plan,
2. plans it with cost-k-decomp for every requested ``k`` and executes those
   plans,
3. reports, per plan, the planning time, the estimated cost, the evaluation
   work (tuples read + emitted, the hardware-independent proxy), the
   wall-clock evaluation time, and the baseline/structural ratios the paper
   plots.

Correctness is also cross-checked: every structural plan must return exactly
the same answer as the baseline plan.

Every ``measure_*`` entry point (and :func:`compare_planners`) accepts a
``plan_cache`` -- a :class:`repro.db.storage.PlanCache` -- keyed by (query
fingerprint, statistics digest, k, planner knobs).  On a hit the winning
plan is rebuilt from its stored payload and ``planning_seconds`` is
reported as ``0.0`` (planning was genuinely skipped); on a miss the planner
runs and the result is stored.  Any statistics change alters the digest,
so stale plans can never be replayed against refreshed catalogs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.db.database import Database
from repro.db.executor import ExecutionResult
from repro.db.storage import (
    PlanCache,
    decomposition_from_payload,
    decomposition_to_payload,
    query_fingerprint,
    statistics_digest,
)
from repro.exceptions import PlanningError, StorageFormatError
from repro.planner.baseline import baseline_plan
from repro.planner.cost_k_decomp import (
    CostPlanningFamily,
    cost_k_decomp,
    planning_family,
)
from repro.planner.plans import HypertreePlan, JoinOrderPlan
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class PlanMeasurement:
    """One executed plan and its measurements.

    ``budget_exceeded`` marks runs that hit the evaluation-work budget (a
    query timeout); for those, ``evaluation_work`` is the work done before
    the abort, i.e. a lower bound, and ``answer_cardinality`` is -1.
    """

    label: str
    planning_seconds: float
    evaluation_seconds: float
    estimated_cost: float
    evaluation_work: int
    answer_cardinality: int
    width: Optional[int] = None
    budget_exceeded: bool = False
    #: Name of the weighting function the planner minimised ("-" for the
    #: quantitative-only baseline, which has none).
    weighting: str = "-"

    @property
    def total_seconds(self) -> float:
        return self.planning_seconds + self.evaluation_seconds

    def as_row(self) -> Dict[str, object]:
        return {
            "plan": self.label,
            "weighting": self.weighting,
            "width": self.width if self.width is not None else "-",
            "planning_s": round(self.planning_seconds, 4),
            "evaluation_s": round(self.evaluation_seconds, 4),
            "total_s": round(self.total_seconds, 4),
            "estimated_cost": round(self.estimated_cost, 1),
            "evaluation_work": self.evaluation_work,
            "answer_cardinality": self.answer_cardinality,
            "budget_exceeded": self.budget_exceeded,
        }


@dataclass
class ComparisonReport:
    """The full comparison for one query/database pair."""

    query_name: str
    baseline: PlanMeasurement
    structural: Dict[int, PlanMeasurement] = field(default_factory=dict)

    def work_ratio(self, k: int) -> float:
        """Baseline work / structural work for bound ``k`` (the quantity the
        Fig. 8(A) bars report, using work instead of seconds)."""
        measurement = self.structural[k]
        return self.baseline.evaluation_work / max(measurement.evaluation_work, 1)

    def time_ratio(self, k: int, include_planning: bool = True) -> float:
        measurement = self.structural[k]
        denominator = (
            measurement.total_seconds if include_planning else measurement.evaluation_seconds
        )
        numerator = (
            self.baseline.total_seconds if include_planning else self.baseline.evaluation_seconds
        )
        return numerator / max(denominator, 1e-9)

    def rows(self) -> List[Dict[str, object]]:
        rows = [self.baseline.as_row()]
        for k in sorted(self.structural):
            row = self.structural[k].as_row()
            row["work_ratio_vs_baseline"] = round(self.work_ratio(k), 2)
            rows.append(row)
        return rows

    def describe(self) -> str:
        lines = [f"Comparison for {self.query_name}"]
        for row in self.rows():
            pieces = ", ".join(f"{key}={value}" for key, value in row.items())
            lines.append(f"  {pieces}")
        return "\n".join(lines)


def _measure_execution(plan, database: Database) -> ExecutionResult:
    return plan.execute(database)


def _execute_and_measure(
    plan, database: Database, label: str, budget: Optional[int], width=None,
    weighting: str = "-", threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> PlanMeasurement:
    from repro.db.algebra import EvaluationBudgetExceeded

    # Both plan shapes lower to the shared plan-node IR and execute on the
    # identical kernels, which is what makes the work counters comparable.
    plan_ir = plan.to_ir()
    started = time.perf_counter()
    try:
        result = plan_ir.execute(
            database,
            budget=budget,
            threads=threads,
            memory_budget_bytes=memory_budget_bytes,
        )
        elapsed = time.perf_counter() - started
        return PlanMeasurement(
            label=label,
            planning_seconds=plan.planning_seconds,
            evaluation_seconds=elapsed,
            estimated_cost=plan.estimated_cost,
            evaluation_work=result.stats.total_work,
            answer_cardinality=result.cardinality,
            width=width,
            weighting=weighting,
        )
    except EvaluationBudgetExceeded as exc:
        elapsed = time.perf_counter() - started
        return PlanMeasurement(
            label=label,
            planning_seconds=plan.planning_seconds,
            evaluation_seconds=elapsed,
            estimated_cost=plan.estimated_cost,
            evaluation_work=exc.work_so_far,
            answer_cardinality=-1,
            width=width,
            budget_exceeded=True,
            weighting=weighting,
        )


def _baseline_cache_key(query: ConjunctiveQuery, statistics) -> Dict[str, object]:
    return {
        "kind": "join_order",
        "query": query_fingerprint(query),
        "statistics": statistics_digest(statistics),
    }


def _structural_cache_key(
    query: ConjunctiveQuery, statistics, k: int, completion: str
) -> Dict[str, object]:
    return {
        "kind": "hypertree",
        "query": query_fingerprint(query),
        "statistics": statistics_digest(statistics),
        "k": int(k),
        "completion": completion,
    }


def _cached_baseline_plan(
    query: ConjunctiveQuery, statistics, plan_cache: Optional[PlanCache]
) -> JoinOrderPlan:
    """The baseline plan, through the plan cache when one is given (a hit
    skips the optimiser's join-order search and reports zero planning
    time)."""
    if plan_cache is None:
        return baseline_plan(query, statistics)
    key = _baseline_cache_key(query, statistics)
    payload = plan_cache.lookup(key)
    if payload is not None:
        try:
            return JoinOrderPlan(
                query=query,
                order=tuple(str(name) for name in payload["order"]),
                estimated_cost=float(payload["estimated_cost"]),
                planning_seconds=0.0,
            )
        except (KeyError, TypeError, ValueError):
            pass  # corrupt entry: replan and overwrite below
    plan = baseline_plan(query, statistics)
    plan_cache.store(
        key, {"order": list(plan.order), "estimated_cost": plan.estimated_cost}
    )
    return plan


def _cached_structural_plan(
    query: ConjunctiveQuery,
    statistics,
    k: int,
    completion: str,
    family_factory,
    plan_cache: Optional[PlanCache],
) -> HypertreePlan:
    """cost-k-decomp through the plan cache: a hit rebuilds the stored
    winning decomposition (``planning_seconds == 0.0``); a miss plans and
    stores.  Only successful plans are cached -- a ``PlanningError`` (k
    below the hypertree width) is recomputed each time.  ``family_factory``
    produces the (shared) :class:`CostPlanningFamily` and is only called on
    the planning path, so a fully warm sweep builds no planner state at
    all."""
    if plan_cache is None:
        return cost_k_decomp(
            query, statistics, k, completion=completion, family=family_factory()
        )
    key = _structural_cache_key(query, statistics, k, completion)
    payload = plan_cache.lookup(key)
    if payload is not None:
        try:
            decomposition = decomposition_from_payload(
                query.hypergraph(), payload["decomposition"]
            )
            return HypertreePlan(
                query=query,
                decomposition=decomposition,
                estimated_cost=float(payload["estimated_cost"]),
                k=int(payload["k"]),
                node_estimates={
                    int(node_id): float(value)
                    for node_id, value in payload["node_estimates"].items()
                },
                planning_seconds=0.0,
                planned_query=None,
                weighting=str(payload["weighting"]),
            )
        except (KeyError, TypeError, ValueError, StorageFormatError):
            pass  # corrupt entry: replan and overwrite below
    plan = cost_k_decomp(
        query, statistics, k, completion=completion, family=family_factory()
    )
    plan_cache.store(
        key,
        {
            "decomposition": decomposition_to_payload(plan.decomposition),
            "estimated_cost": plan.estimated_cost,
            "k": plan.k,
            "node_estimates": {
                str(node_id): value
                for node_id, value in plan.node_estimates.items()
            },
            "weighting": plan.weighting,
        },
    )
    return plan


def measure_baseline(
    query: ConjunctiveQuery, database: Database, budget: Optional[int] = None,
    threads: Optional[int] = None, memory_budget_bytes: Optional[int] = None,
    plan_cache: Optional[PlanCache] = None,
) -> PlanMeasurement:
    """Plan with the left-deep optimiser (or replay the cached order) and
    execute."""
    plan = _cached_baseline_plan(query, database.statistics, plan_cache)
    return _execute_and_measure(
        plan, database, "baseline(left-deep)", budget,
        threads=threads, memory_budget_bytes=memory_budget_bytes,
    )


def measure_structural(
    query: ConjunctiveQuery,
    database: Database,
    k: int,
    completion: str = "fresh",
    budget: Optional[int] = None,
    family: Optional[CostPlanningFamily] = None,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    plan_cache: Optional[PlanCache] = None,
    _family_factory=None,
) -> PlanMeasurement:
    """Plan with cost-k-decomp for one ``k`` and execute.

    ``family`` (see :func:`repro.planner.cost_k_decomp.planning_family`)
    lets a k-sweep share incremental candidates graphs and warm cost-model
    memos; the per-``k`` planning time still includes that call's share of
    the incremental construction.  ``plan_cache`` short-circuits both: a
    hit replays the stored winning decomposition without touching the
    candidates graph at all.  ``_family_factory`` (internal; used by
    :func:`compare_planners`) lazily supplies the shared family so a fully
    cached sweep never builds one.
    """
    plan = _cached_structural_plan(
        query,
        database.statistics,
        k,
        completion,
        _family_factory if _family_factory is not None else (lambda: family),
        plan_cache,
    )
    return _execute_and_measure(
        plan, database, f"cost-{k}-decomp", budget, width=plan.width,
        weighting=plan.weighting, threads=threads,
        memory_budget_bytes=memory_budget_bytes,
    )


def compare_planners(
    query: ConjunctiveQuery,
    database: Database,
    k_values: Sequence[int] = (2, 3, 4, 5),
    completion: str = "fresh",
    check_answers: bool = True,
    budget: Optional[int] = 20_000_000,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    plan_cache: Optional[PlanCache] = None,
) -> ComparisonReport:
    """Run the full comparison for one query over one database.

    ``budget`` caps the evaluation work of every plan (default 20M tuples,
    roughly tens of seconds of pure-Python evaluation); a plan that exceeds
    it is reported with ``budget_exceeded=True`` and its work-so-far as a
    lower bound, mirroring a query timeout in a real system.
    ``threads``/``memory_budget_bytes`` select the parallel, memory-bounded
    execution plane for every executed plan (defaults: the database's
    knobs); work counters and answers are engine-identical either way, so
    the comparison stays fair.  ``plan_cache`` makes the whole sweep
    persistent: with unchanged statistics a repeated comparison replays
    every winning plan with zero planning time.
    """
    baseline_measurement = measure_baseline(
        query, database, budget=budget, threads=threads,
        memory_budget_bytes=memory_budget_bytes, plan_cache=plan_cache,
    )
    report = ComparisonReport(query_name=query.name, baseline=baseline_measurement)
    # The family is built lazily, on the first k the plan cache cannot
    # serve: a fully warm sweep does zero planner setup.
    shared: List[CostPlanningFamily] = []

    def family_factory() -> CostPlanningFamily:
        if not shared:
            shared.append(
                planning_family(query, database.statistics, completion=completion)
            )
        return shared[0]

    for k in k_values:
        try:
            measurement = measure_structural(
                query, database, k, completion=completion, budget=budget,
                threads=threads,
                memory_budget_bytes=memory_budget_bytes, plan_cache=plan_cache,
                _family_factory=family_factory,
            )
        except PlanningError:
            continue
        report.structural[k] = measurement
        answers_comparable = (
            not measurement.budget_exceeded and not baseline_measurement.budget_exceeded
        )
        if (
            check_answers
            and answers_comparable
            and measurement.answer_cardinality != baseline_measurement.answer_cardinality
        ):
            raise PlanningError(
                f"answer mismatch for {query.name} at k={k}: structural plan returned "
                f"{measurement.answer_cardinality} tuples, baseline "
                f"{baseline_measurement.answer_cardinality}"
            )
    if not report.structural:
        raise PlanningError(
            f"no structural plan could be built for {query.name} with k in {list(k_values)}"
        )
    return report
