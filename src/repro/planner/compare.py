"""Head-to-head comparison harness: cost-k-decomp vs the quantitative-only
baseline.

This is the measurement core behind the Fig. 8 experiments: for a query, a
database and a set of width bounds, it

1. plans the query with the baseline left-deep optimiser and executes the
   plan,
2. plans it with cost-k-decomp for every requested ``k`` and executes those
   plans,
3. reports, per plan, the planning time, the estimated cost, the evaluation
   work (tuples read + emitted, the hardware-independent proxy), the
   wall-clock evaluation time, and the baseline/structural ratios the paper
   plots.

Correctness is also cross-checked: every structural plan must return exactly
the same answer as the baseline plan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.db.database import Database
from repro.db.executor import ExecutionResult
from repro.exceptions import PlanningError
from repro.planner.baseline import baseline_plan
from repro.planner.cost_k_decomp import (
    CostPlanningFamily,
    cost_k_decomp,
    planning_family,
)
from repro.planner.plans import HypertreePlan, JoinOrderPlan
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class PlanMeasurement:
    """One executed plan and its measurements.

    ``budget_exceeded`` marks runs that hit the evaluation-work budget (a
    query timeout); for those, ``evaluation_work`` is the work done before
    the abort, i.e. a lower bound, and ``answer_cardinality`` is -1.
    """

    label: str
    planning_seconds: float
    evaluation_seconds: float
    estimated_cost: float
    evaluation_work: int
    answer_cardinality: int
    width: Optional[int] = None
    budget_exceeded: bool = False
    #: Name of the weighting function the planner minimised ("-" for the
    #: quantitative-only baseline, which has none).
    weighting: str = "-"

    @property
    def total_seconds(self) -> float:
        return self.planning_seconds + self.evaluation_seconds

    def as_row(self) -> Dict[str, object]:
        return {
            "plan": self.label,
            "weighting": self.weighting,
            "width": self.width if self.width is not None else "-",
            "planning_s": round(self.planning_seconds, 4),
            "evaluation_s": round(self.evaluation_seconds, 4),
            "total_s": round(self.total_seconds, 4),
            "estimated_cost": round(self.estimated_cost, 1),
            "evaluation_work": self.evaluation_work,
            "answer_cardinality": self.answer_cardinality,
            "budget_exceeded": self.budget_exceeded,
        }


@dataclass
class ComparisonReport:
    """The full comparison for one query/database pair."""

    query_name: str
    baseline: PlanMeasurement
    structural: Dict[int, PlanMeasurement] = field(default_factory=dict)

    def work_ratio(self, k: int) -> float:
        """Baseline work / structural work for bound ``k`` (the quantity the
        Fig. 8(A) bars report, using work instead of seconds)."""
        measurement = self.structural[k]
        return self.baseline.evaluation_work / max(measurement.evaluation_work, 1)

    def time_ratio(self, k: int, include_planning: bool = True) -> float:
        measurement = self.structural[k]
        denominator = (
            measurement.total_seconds if include_planning else measurement.evaluation_seconds
        )
        numerator = (
            self.baseline.total_seconds if include_planning else self.baseline.evaluation_seconds
        )
        return numerator / max(denominator, 1e-9)

    def rows(self) -> List[Dict[str, object]]:
        rows = [self.baseline.as_row()]
        for k in sorted(self.structural):
            row = self.structural[k].as_row()
            row["work_ratio_vs_baseline"] = round(self.work_ratio(k), 2)
            rows.append(row)
        return rows

    def describe(self) -> str:
        lines = [f"Comparison for {self.query_name}"]
        for row in self.rows():
            pieces = ", ".join(f"{key}={value}" for key, value in row.items())
            lines.append(f"  {pieces}")
        return "\n".join(lines)


def _measure_execution(plan, database: Database) -> ExecutionResult:
    return plan.execute(database)


def _execute_and_measure(
    plan, database: Database, label: str, budget: Optional[int], width=None,
    weighting: str = "-", threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> PlanMeasurement:
    from repro.db.algebra import EvaluationBudgetExceeded

    # Both plan shapes lower to the shared plan-node IR and execute on the
    # identical kernels, which is what makes the work counters comparable.
    plan_ir = plan.to_ir()
    started = time.perf_counter()
    try:
        result = plan_ir.execute(
            database,
            budget=budget,
            threads=threads,
            memory_budget_bytes=memory_budget_bytes,
        )
        elapsed = time.perf_counter() - started
        return PlanMeasurement(
            label=label,
            planning_seconds=plan.planning_seconds,
            evaluation_seconds=elapsed,
            estimated_cost=plan.estimated_cost,
            evaluation_work=result.stats.total_work,
            answer_cardinality=result.cardinality,
            width=width,
            weighting=weighting,
        )
    except EvaluationBudgetExceeded as exc:
        elapsed = time.perf_counter() - started
        return PlanMeasurement(
            label=label,
            planning_seconds=plan.planning_seconds,
            evaluation_seconds=elapsed,
            estimated_cost=plan.estimated_cost,
            evaluation_work=exc.work_so_far,
            answer_cardinality=-1,
            width=width,
            budget_exceeded=True,
            weighting=weighting,
        )


def measure_baseline(
    query: ConjunctiveQuery, database: Database, budget: Optional[int] = None,
    threads: Optional[int] = None, memory_budget_bytes: Optional[int] = None,
) -> PlanMeasurement:
    """Plan with the left-deep optimiser and execute."""
    plan: JoinOrderPlan = baseline_plan(query, database.statistics)
    return _execute_and_measure(
        plan, database, "baseline(left-deep)", budget,
        threads=threads, memory_budget_bytes=memory_budget_bytes,
    )


def measure_structural(
    query: ConjunctiveQuery,
    database: Database,
    k: int,
    completion: str = "fresh",
    budget: Optional[int] = None,
    family: Optional[CostPlanningFamily] = None,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> PlanMeasurement:
    """Plan with cost-k-decomp for one ``k`` and execute.

    ``family`` (see :func:`repro.planner.cost_k_decomp.planning_family`)
    lets a k-sweep share incremental candidates graphs and warm cost-model
    memos; the per-``k`` planning time still includes that call's share of
    the incremental construction.
    """
    plan: HypertreePlan = cost_k_decomp(
        query, database.statistics, k, completion=completion, family=family
    )
    return _execute_and_measure(
        plan, database, f"cost-{k}-decomp", budget, width=plan.width,
        weighting=plan.weighting, threads=threads,
        memory_budget_bytes=memory_budget_bytes,
    )


def compare_planners(
    query: ConjunctiveQuery,
    database: Database,
    k_values: Sequence[int] = (2, 3, 4, 5),
    completion: str = "fresh",
    check_answers: bool = True,
    budget: Optional[int] = 20_000_000,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> ComparisonReport:
    """Run the full comparison for one query over one database.

    ``budget`` caps the evaluation work of every plan (default 20M tuples,
    roughly tens of seconds of pure-Python evaluation); a plan that exceeds
    it is reported with ``budget_exceeded=True`` and its work-so-far as a
    lower bound, mirroring a query timeout in a real system.
    ``threads``/``memory_budget_bytes`` select the parallel, memory-bounded
    execution plane for every executed plan (defaults: the database's
    knobs); work counters and answers are engine-identical either way, so
    the comparison stays fair.
    """
    baseline_measurement = measure_baseline(
        query, database, budget=budget, threads=threads,
        memory_budget_bytes=memory_budget_bytes,
    )
    report = ComparisonReport(query_name=query.name, baseline=baseline_measurement)
    family = planning_family(query, database.statistics, completion=completion)
    for k in k_values:
        try:
            measurement = measure_structural(
                query, database, k, completion=completion, budget=budget,
                family=family, threads=threads,
                memory_budget_bytes=memory_budget_bytes,
            )
        except PlanningError:
            continue
        report.structural[k] = measurement
        answers_comparable = (
            not measurement.budget_exceeded and not baseline_measurement.budget_exceeded
        )
        if (
            check_answers
            and answers_comparable
            and measurement.answer_cardinality != baseline_measurement.answer_cardinality
        ):
            raise PlanningError(
                f"answer mismatch for {query.name} at k={k}: structural plan returned "
                f"{measurement.answer_cardinality} tuples, baseline "
                f"{baseline_measurement.answer_cardinality}"
            )
    if not report.structural:
        raise PlanningError(
            f"no structural plan could be built for {query.name} with k in {list(k_values)}"
        )
    return report
