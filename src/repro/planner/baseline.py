"""The quantitative-only baseline optimiser (the "CommDB" stand-in).

The paper compares cost-k-decomp against the internal optimiser of a
commercial DBMS.  Commercial optimisers are purely quantitative: they
restrict the search space to plans with a very simple structure -- typically
*left-deep join trees* -- and pick the cheapest according to a cost model
driven by relation sizes and attribute selectivities (Section 1.2).

:class:`SystemROptimizer` is exactly that classical algorithm:

* the search space is the left-deep join orders over the query atoms;
* the cost of an order is the estimated size of every intermediate join
  result plus the input scans (the same cardinality estimator the
  structure-aware planner uses, so the comparison isolates the *search
  space*, not the cost model);
* the search is the System-R dynamic program over atom subsets, avoiding
  Cartesian products whenever a connected extension exists, with a greedy
  fallback for queries too large for the exact DP.

Execution of the resulting plan is a flat pipeline of pairwise joins with no
semijoin reduction and no early projection -- the behaviour whose worst case
is ``O(n^ℓ)`` in the query length ℓ rather than ``O(n^{w+1})`` in the width,
which is precisely the gap the paper's experiments exhibit.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.db.costmodel import CardinalityEstimator
from repro.db.statistics import CatalogStatistics
from repro.exceptions import PlanningError
from repro.planner.plans import JoinOrderPlan
from repro.query.conjunctive import ConjunctiveQuery


class SystemROptimizer:
    """Left-deep dynamic-programming join-order optimiser."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        statistics: CatalogStatistics,
        exhaustive_limit: int = 13,
    ) -> None:
        self.query = query
        self.statistics = statistics
        self.estimator = CardinalityEstimator(query, statistics)
        self.exhaustive_limit = exhaustive_limit
        self._adjacent: Dict[str, FrozenSet[str]] = self._atom_adjacency()

    # ------------------------------------------------------------------
    def _atom_adjacency(self) -> Dict[str, FrozenSet[str]]:
        """Atoms sharing at least one variable (used to avoid Cartesian
        products during the search)."""
        atoms = self.query.atoms
        adjacency: Dict[str, set] = {a.name: set() for a in atoms}
        for i, first in enumerate(atoms):
            for second in atoms[i + 1:]:
                if set(first.variables) & set(second.variables):
                    adjacency[first.name].add(second.name)
                    adjacency[second.name].add(first.name)
        return {name: frozenset(neigh) for name, neigh in adjacency.items()}

    def _order_cost(self, order: Sequence[str]) -> float:
        """Cost of a left-deep order: input scans plus every intermediate
        (and final) join-result estimate."""
        cost = sum(self.estimator.profile(name).cardinality for name in order)
        for prefix_length in range(2, len(order) + 1):
            cost += self.estimator.join_cardinality(list(order[:prefix_length]))
        return cost

    # ------------------------------------------------------------------
    def _optimize_exhaustive(self) -> Tuple[Tuple[str, ...], float]:
        """System-R dynamic programming over atom subsets (left-deep only)."""
        names = [a.name for a in self.query.atoms]
        best: Dict[FrozenSet[str], Tuple[float, Tuple[str, ...]]] = {}
        for name in names:
            subset = frozenset({name})
            best[subset] = (self.estimator.profile(name).cardinality, (name,))

        for size in range(2, len(names) + 1):
            for combo in combinations(names, size):
                subset = frozenset(combo)
                choices: List[Tuple[float, Tuple[str, ...]]] = []
                connected_choices: List[Tuple[float, Tuple[str, ...]]] = []
                for last in combo:
                    rest = subset - {last}
                    if rest not in best:
                        continue
                    rest_cost, rest_order = best[rest]
                    order = rest_order + (last,)
                    cost = rest_cost
                    cost += self.estimator.profile(last).cardinality
                    cost += self.estimator.join_cardinality(list(order))
                    entry = (cost, order)
                    choices.append(entry)
                    if any(other in self._adjacent[last] for other in rest):
                        connected_choices.append(entry)
                pool = connected_choices or choices
                if pool:
                    best[subset] = min(pool)
        full = frozenset(names)
        if full not in best:
            raise PlanningError("dynamic program failed to cover all atoms")
        cost, order = best[full]
        return order, cost

    def _optimize_greedy(self) -> Tuple[Tuple[str, ...], float]:
        """Greedy smallest-intermediate-first ordering for very large queries."""
        names = [a.name for a in self.query.atoms]
        remaining = set(names)
        start = min(remaining, key=lambda n: self.estimator.profile(n).cardinality)
        order = [start]
        remaining.remove(start)
        while remaining:
            connected = [
                n for n in remaining if any(o in self._adjacent[n] for o in order)
            ]
            pool = connected or sorted(remaining)
            nxt = min(
                pool,
                key=lambda n: self.estimator.join_cardinality(order + [n]),
            )
            order.append(nxt)
            remaining.remove(nxt)
        order_tuple = tuple(order)
        return order_tuple, self._order_cost(order_tuple)

    # ------------------------------------------------------------------
    def optimize(self) -> JoinOrderPlan:
        """Pick the cheapest left-deep plan."""
        started = time.perf_counter()
        if len(self.query.atoms) <= self.exhaustive_limit:
            order, cost = self._optimize_exhaustive()
        else:
            order, cost = self._optimize_greedy()
        elapsed = time.perf_counter() - started
        return JoinOrderPlan(
            query=self.query,
            order=order,
            estimated_cost=cost,
            planning_seconds=elapsed,
        )


def baseline_plan(
    query: ConjunctiveQuery, statistics: CatalogStatistics
) -> JoinOrderPlan:
    """Convenience wrapper: the best left-deep plan for the query."""
    return SystemROptimizer(query, statistics).optimize()
