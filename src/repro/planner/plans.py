"""Logical query plans.

Two plan shapes appear in the paper's experiments:

* :class:`HypertreePlan` -- a (complete) weighted hypertree decomposition of
  the query, annotated with the per-node cost estimates (the ``$`` labels of
  Figs. 6 and 7); produced by ``cost-k-decomp``.
* :class:`JoinOrderPlan` -- a left-deep join order, the plan shape commercial
  optimisers explore; produced by the baseline System-R style optimiser that
  stands in for "CommDB".

Both know how to execute themselves against a :class:`repro.db.database.Database`
and return an :class:`repro.db.executor.ExecutionResult` carrying the work
counters the experiments compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.db.executor import ExecutionResult
from repro.db.plan_ir import QueryPlanIR, hypertree_plan_ir, join_order_plan_ir
from repro.decomposition.hypertree import HypertreeDecomposition, NodeId
from repro.query.conjunctive import ConjunctiveQuery


@dataclass
class HypertreePlan:
    """A structural query plan: a complete hypertree decomposition plus the
    estimates the planner used to pick it."""

    query: ConjunctiveQuery
    decomposition: HypertreeDecomposition
    estimated_cost: float
    k: int
    node_estimates: Dict[NodeId, float] = field(default_factory=dict)
    planning_seconds: float = 0.0
    #: The query actually decomposed (it differs from ``query`` when the
    #: fresh-variable completeness construction of Section 6 was used).
    planned_query: Optional[ConjunctiveQuery] = None
    #: Name of the weighting function the planner minimised (for reports).
    weighting: str = "cost_H(Q)"

    @property
    def width(self) -> int:
        return self.decomposition.width

    def to_ir(self) -> QueryPlanIR:
        """Lower the plan to the shared plan-node IR (the same node tree and
        kernels the baseline plan executes on)."""
        query = self.planned_query or self.query
        # Output variables must come from the original query (fresh variables
        # are internal); rebuild the executed query with the original head.
        executed = ConjunctiveQuery(
            atoms=query.atoms,
            output_variables=self.query.output_variables,
            name=query.name,
        )
        return hypertree_plan_ir(executed, self.decomposition)

    def execute(
        self,
        database: Database,
        budget: Optional[int] = None,
        threads: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> ExecutionResult:
        """Run the plan: per-node joins, then Yannakakis over the tree
        (``threads``/``memory_budget_bytes`` select the parallel,
        memory-bounded plane; defaults come from the database)."""
        return self.to_ir().execute(
            database,
            budget=budget,
            threads=threads,
            memory_budget_bytes=memory_budget_bytes,
        )

    def describe(self) -> str:
        lines = [
            f"Hypertree plan for {self.query.name} (k={self.k}, width={self.width}, "
            f"estimated cost={self.estimated_cost:,.0f})"
        ]

        def visit(node_id: NodeId, depth: int) -> None:
            node = self.decomposition.node(node_id)
            estimate = self.node_estimates.get(node_id)
            cost = f"  $≈{estimate:,.0f}" if estimate is not None else ""
            lam = ", ".join(sorted(node.lambda_edges))
            chi = ", ".join(sorted(node.chi))
            lines.append(f"{'  ' * (depth + 1)}λ={{{lam}}} χ={{{chi}}}{cost}")
            for kid in self.decomposition.children(node_id):
                visit(kid, depth + 1)

        visit(self.decomposition.root, 0)
        return "\n".join(lines)


@dataclass
class JoinOrderPlan:
    """A quantitative-only plan: a left-deep join order over the query atoms."""

    query: ConjunctiveQuery
    order: Tuple[str, ...]
    estimated_cost: float
    planning_seconds: float = 0.0

    def to_ir(self) -> QueryPlanIR:
        """Lower the plan to the shared plan-node IR."""
        return join_order_plan_ir(self.query, self.order)

    def execute(
        self,
        database: Database,
        budget: Optional[int] = None,
        threads: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> ExecutionResult:
        """Join the atoms left-to-right in the chosen order (no structural
        awareness: no semijoin reduction, no early projection)."""
        return self.to_ir().execute(
            database,
            budget=budget,
            threads=threads,
            memory_budget_bytes=memory_budget_bytes,
        )

    def describe(self) -> str:
        chain = " ⋈ ".join(self.order)
        return (
            f"Left-deep plan for {self.query.name}: {chain} "
            f"(estimated cost={self.estimated_cost:,.0f})"
        )
