"""cost-k-decomp: minimal-k-decomp specialised to the query-cost TAF.

Section 6 of the paper: given a conjunctive query ``Q``, catalog statistics
and a width bound ``k``, compute a ``[cost_H(Q), kNFD_{H(Q)}]``-minimal
weighted hypertree decomposition and read it as a query plan.

Two details from the paper are handled here:

* **Completeness.**  Query answering needs *complete* decompositions, but NF
  decompositions need not be complete (and some hypergraphs have no complete
  NF decomposition at all).  The paper's remedy is to add a fresh variable to
  every query atom before decomposing -- then every atom must be strongly
  covered -- and filter the fresh variables out of the emitted plan.  That is
  the default behaviour (``completion="fresh"``); ``completion="post"``
  instead decomposes the original hypergraph and attaches the missing atoms
  afterwards (cheaper, but the completed decomposition may no longer be
  weight-minimal, exactly as the paper warns).
* **Reporting.**  The per-node ``$`` estimates of Figs. 6 and 7 are attached
  to the returned :class:`~repro.planner.plans.HypertreePlan`.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.db.statistics import CatalogStatistics
from repro.decomposition.candidates import CandidatesGraph, CandidatesGraphFamily
from repro.decomposition.hypertree import DecompositionNode, HypertreeDecomposition
from repro.decomposition.minimal import TieBreaker, minimal_k_decomp
from repro.decomposition.normal_form import complete_decomposition
from repro.exceptions import NoDecompositionExistsError, PlanningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.obs.trace import active_recorder
from repro.planner.plans import HypertreePlan
from repro.query.conjunctive import ConjunctiveQuery, is_fresh_variable
from repro.weights.querycost import QueryCostTAF


def _strip_fresh_variables(
    decomposition: HypertreeDecomposition, original_hypergraph: Hypergraph
) -> HypertreeDecomposition:
    """Remove the fresh completeness variables from every χ label.

    The fresh variables exist only to force every atom to be strongly covered
    during planning (Section 6); carrying them into execution would prevent
    the per-node projections from deduplicating.  Dropping them yields a
    complete decomposition of the *original* query hypergraph with the same
    tree, the same λ labels and the same width.
    """
    nodes = {}
    for node in decomposition.nodes():
        nodes[node.node_id] = DecompositionNode(
            node_id=node.node_id,
            lambda_edges=node.lambda_edges,
            chi=frozenset(v for v in node.chi if not is_fresh_variable(v)),
            component=None,
        )
    children = {
        node_id: decomposition.children(node_id)
        for node_id in decomposition.node_ids()
    }
    return HypertreeDecomposition(
        hypergraph=original_hypergraph,
        root=decomposition.root,
        children=children,
        nodes=nodes,
    )


class CostPlanningFamily:
    """Shared planning state for several ``cost_k_decomp`` calls on one
    (query, statistics, completion) triple -- the Fig. 8(A) k-sweep, the
    doubling search of ``best_plan_over_k``, re-planning after a statistics
    refresh at a new ``k``.

    Holds the planned query (with its fresh completeness variables), its
    hypergraph and bitset view, one :class:`QueryCostTAF` whose per-label
    cost memos therefore persist across the sweep, and a
    :class:`CandidatesGraphFamily` so each bound's candidates graph is
    built incrementally from the previous one.  Construction does no
    planning work; everything expensive happens inside the per-``k``
    ``cost_k_decomp`` call (and is charged to its ``planning_seconds``).
    """

    __slots__ = ("query", "statistics", "completion", "planned_query",
                 "hypergraph", "taf", "graphs")

    def __init__(
        self,
        query: ConjunctiveQuery,
        statistics: CatalogStatistics,
        completion: str = "fresh",
    ) -> None:
        if completion not in {"fresh", "post", "none"}:
            raise PlanningError(f"unknown completion mode {completion!r}")
        self.query = query
        self.statistics = statistics
        self.completion = completion
        self.planned_query = (
            query.with_fresh_head_variables() if completion == "fresh" else query
        )
        self.hypergraph = self.planned_query.hypergraph()
        self.taf = QueryCostTAF(self.planned_query, statistics)
        self.graphs = CandidatesGraphFamily(self.hypergraph)

    def graph(self, k: int) -> CandidatesGraph:
        return self.graphs.graph(k)

    def matches(
        self, query: ConjunctiveQuery, statistics: CatalogStatistics, completion: str
    ) -> bool:
        return (
            self.query == query
            and self.statistics is statistics
            and self.completion == completion
        )


def planning_family(
    query: ConjunctiveQuery,
    statistics: CatalogStatistics,
    completion: str = "fresh",
) -> CostPlanningFamily:
    """A reusable :class:`CostPlanningFamily` for k-sweeps over one query."""
    return CostPlanningFamily(query, statistics, completion=completion)


def cost_k_decomp(
    query: ConjunctiveQuery,
    statistics: CatalogStatistics,
    k: int,
    completion: str = "fresh",
    tie_breaker: Optional[TieBreaker] = None,
    graph: Optional[CandidatesGraph] = None,
    family: Optional[CostPlanningFamily] = None,
) -> HypertreePlan:
    """Compute the minimal-cost width-``k`` normal-form plan for ``query``.

    Parameters
    ----------
    query:
        The conjunctive query to plan.
    statistics:
        Catalog statistics (cardinalities and attribute selectivities) of the
        underlying database.
    k:
        Width bound; must be at least the hypertree width of the (completed)
        query hypergraph or planning fails.
    completion:
        ``"fresh"`` (default) uses the fresh-variable construction so the
        minimal decomposition is complete by construction; ``"post"``
        decomposes the original hypergraph and completes afterwards;
        ``"none"`` returns the NF decomposition as-is (only useful for
        inspection, not for execution).
    graph:
        An already-built candidates graph for the *planned* hypergraph (the
        completed query's hypergraph under ``completion="fresh"``), e.g.
        when re-planning the same query against several catalogs.  Must
        match the hypergraph being decomposed.
    family:
        A :class:`CostPlanningFamily` (see :func:`planning_family`) shared
        across several ``k``: the candidates graph is then built
        incrementally from the family's largest smaller bound, and the
        family's single TAF keeps its cost-model memos warm across the
        sweep.  Mutually exclusive with ``graph``.

    Raises
    ------
    PlanningError
        If no width-``k`` decomposition exists, or ``completion`` is invalid.
    """
    if completion not in {"fresh", "post", "none"}:
        raise PlanningError(f"unknown completion mode {completion!r}")
    if family is not None:
        if graph is not None:
            raise PlanningError("pass either graph= or family=, not both")
        if not family.matches(query, statistics, completion):
            raise PlanningError(
                "the supplied planning family was built for a different "
                "query, statistics or completion mode"
            )

    started = time.perf_counter()
    started_monotonic = time.monotonic()
    if family is not None:
        planned_query = family.planned_query
        hypergraph = family.hypergraph
        taf = family.taf
        # Incremental (k-prefix-sharing) construction; charged to this
        # call's planning time, like the fresh construction would be.
        graph = family.graph(k)
    else:
        planned_query = (
            query.with_fresh_head_variables() if completion == "fresh" else query
        )
        hypergraph = planned_query.hypergraph()
        taf = QueryCostTAF(planned_query, statistics)
    # Mask-space weight functions keep the whole evaluation fold on integer
    # masks (translated once per distinct label through the graph's bitset).
    taf.bind_mask_space((graph.bitset if graph is not None else hypergraph.bitset()))

    try:
        decomposition = minimal_k_decomp(
            hypergraph, k, taf, tie_breaker=tie_breaker, graph=graph
        )
    except NoDecompositionExistsError as exc:
        raise PlanningError(
            f"query {query.name!r} has no width-{k} normal-form decomposition "
            f"({'with' if completion == 'fresh' else 'without'} the fresh-variable "
            "construction); increase k"
        ) from exc

    estimated_cost = taf.weigh(decomposition)
    node_estimates: Dict[int, float] = {
        node.node_id: taf.node_estimate(node) for node in decomposition.nodes()
    }

    if completion == "post":
        decomposition = complete_decomposition(decomposition)
    elif completion == "fresh":
        # The fresh variables have served their purpose (forcing strong
        # covering); execute against the original query hypergraph.
        decomposition = _strip_fresh_variables(decomposition, query.hypergraph())

    elapsed = time.perf_counter() - started
    recorder = active_recorder()
    if recorder is not None:
        # Planner layers predate the trace= plumbing; they record into the
        # ambient recorder the caller activated (a write-only sidecar --
        # the search itself never sees it).
        recorder.add_span(
            f"plan:{query.name}",
            "planner",
            started_monotonic,
            time.monotonic(),
            attrs={
                "k": k,
                "estimated_cost": float(estimated_cost),
                "weighting": taf.name,
            },
        )
    return HypertreePlan(
        query=query,
        decomposition=decomposition,
        estimated_cost=estimated_cost,
        k=k,
        node_estimates=node_estimates,
        planning_seconds=elapsed,
        planned_query=None,
        weighting=taf.name,
    )


def best_plan_over_k(
    query: ConjunctiveQuery,
    statistics: CatalogStatistics,
    k_values: Sequence[int],
    completion: str = "fresh",
) -> Dict[int, HypertreePlan]:
    """Plans for several width bounds (the Fig. 8(A) sweep ``k = 2..5``).

    The sweep shares one :class:`CostPlanningFamily`, so every candidates
    graph after the first is built incrementally and the cost-model memos
    stay warm across bounds.  Returns a dict ``k -> plan``; values of ``k``
    below the query's hypertree width are silently skipped (planning fails
    there by definition).
    """
    family = planning_family(query, statistics, completion=completion)
    plans: Dict[int, HypertreePlan] = {}
    for k in k_values:
        try:
            plans[k] = cost_k_decomp(
                query, statistics, k, completion=completion, family=family
            )
        except PlanningError:
            continue
    if not plans:
        raise PlanningError(
            f"no plan found for query {query.name!r} for any k in {list(k_values)}"
        )
    return plans
