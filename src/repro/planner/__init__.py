"""Query planning: cost-k-decomp, the left-deep baseline and the comparison harness."""

from repro.planner.plans import HypertreePlan, JoinOrderPlan
from repro.planner.cost_k_decomp import best_plan_over_k, cost_k_decomp
from repro.planner.baseline import SystemROptimizer, baseline_plan
from repro.planner.compare import (
    ComparisonReport,
    PlanMeasurement,
    compare_planners,
    measure_baseline,
    measure_structural,
)

__all__ = [
    "HypertreePlan",
    "JoinOrderPlan",
    "best_plan_over_k",
    "cost_k_decomp",
    "SystemROptimizer",
    "baseline_plan",
    "ComparisonReport",
    "PlanMeasurement",
    "compare_planners",
    "measure_baseline",
    "measure_structural",
]
