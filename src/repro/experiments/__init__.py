"""Experiment drivers regenerating the paper's tables and figures."""

from repro.experiments.runner import ExperimentResult
from repro.experiments.fig8 import fig8_all, fig8a_experiment, fig8b_experiment
from repro.experiments.tables import (
    example31_experiment,
    fig1_experiment,
    fig6_7_experiment,
    paper_fig1_hd_prime,
    paper_fig1_hd_second,
    psi_table_experiment,
)
from repro.experiments.ablation import (
    hardness_reduction_experiment,
    nf_restriction_ablation,
    scalability_experiment,
)

__all__ = [
    "ExperimentResult",
    "fig8_all",
    "fig8a_experiment",
    "fig8b_experiment",
    "example31_experiment",
    "fig1_experiment",
    "fig6_7_experiment",
    "paper_fig1_hd_prime",
    "paper_fig1_hd_second",
    "psi_table_experiment",
    "hardness_reduction_experiment",
    "nf_restriction_ablation",
    "scalability_experiment",
]
