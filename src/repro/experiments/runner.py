"""Common experiment infrastructure: table formatting and result records.

The experiment drivers in this package regenerate the rows/series of the
paper's tables and figures.  Results are plain lists of dictionaries so that
benchmarks can print them, tests can assert on them, and users can post-
process them (e.g. into pandas) without any dependency on a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """A named table of result rows, with free-form notes."""

    name: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, key: str) -> List[object]:
        return [row.get(key) for row in self.rows]

    # ------------------------------------------------------------------
    def to_table(self) -> str:
        """Render the rows as an aligned text table (the form the benchmark
        harness prints)."""
        if not self.rows:
            return f"{self.name}: (no rows)"
        columns: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        widths = {key: len(str(key)) for key in columns}
        rendered_rows = []
        for row in self.rows:
            rendered = {key: _render(row.get(key)) for key in columns}
            rendered_rows.append(rendered)
            for key in columns:
                widths[key] = max(widths[key], len(rendered[key]))
        lines = [self.name, self.description, ""]
        header = "  ".join(str(key).ljust(widths[key]) for key in columns)
        lines.append(header)
        lines.append("  ".join("-" * widths[key] for key in columns))
        for rendered in rendered_rows:
            lines.append("  ".join(rendered[key].ljust(widths[key]) for key in columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_table()


def _render(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)
