"""Ablation and sanity experiments for design choices the paper calls out.

* :func:`nf_restriction_ablation` -- Sections 3-4 restrict the search space
  from all width-``k`` decompositions to the *normal-form* ones to regain
  tractability.  The ablation checks, on small hypergraphs, that (a) the
  restriction never changes the attainable width (Theorem 2.3) and (b)
  minimal-k-decomp's weight equals the brute-force minimum over all
  enumerated NF decompositions (Theorem 4.4).
* :func:`hardness_reduction_experiment` -- exercises the Theorem 3.3 and
  Theorem 5.1 reductions on small instances: the minimal weight is 0 exactly
  for the "yes" instances.
* :func:`scalability_experiment` -- planning time of minimal-k-decomp as the
  number of atoms grows (the practical counterpart of the Theorem 4.5
  complexity bound).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.db.database import Database
from repro.db.relation import Relation
from repro.decomposition.enumerate import enumerate_nf_decompositions
from repro.decomposition.kdecomp import hypertree_width
from repro.decomposition.minimal import minimal_k_decomp, minimum_weight
from repro.decomposition.normal_form import is_normal_form
from repro.experiments.runner import ExperimentResult
from repro.hypergraph.generators import (
    cycle_hypergraph,
    grid_hypergraph,
    paper_q0_hypergraph,
)
from repro.query.conjunctive import build_query
from repro.reductions.acyclic_bcq import reduction_minimum_weight
from repro.reductions.coloring import (
    brute_force_3coloring,
    coloring_hwf,
    coloring_join_tree,
)
from repro.weights.library import lexicographic_taf, node_count_taf, width_taf
from repro.weights.semiring import INFINITY
from repro.workloads.synthetic import chain_query, cycle_query


def nf_restriction_ablation(limit: int = 4000) -> ExperimentResult:
    """Check the normal-form restriction on a handful of small hypergraphs."""
    cases = {
        "cycle(4)": cycle_hypergraph(4),
        "cycle(5)": cycle_hypergraph(5),
        "grid(2x3)": grid_hypergraph(2, 3),
        "H(Q0)": paper_q0_hypergraph(),
    }
    result = ExperimentResult(
        name="Ablation -- normal-form restriction",
        description=(
            "For each hypergraph: hypertree width, number of NF decompositions "
            "enumerated (capped), and agreement between minimal-k-decomp and the "
            "brute-force minimum of the lexicographic TAF over the enumeration."
        ),
    )
    for label, hypergraph in cases.items():
        width = hypertree_width(hypergraph)
        taf = lexicographic_taf(hypergraph)
        algorithmic = minimum_weight(hypergraph, width, taf)
        enumerated = list(
            enumerate_nf_decompositions(hypergraph, width, limit=limit)
        )
        brute = min((taf.weigh(hd) for hd in enumerated), default=INFINITY)
        all_nf = all(is_normal_form(hd) for hd in enumerated)
        all_valid = all(hd.is_valid() for hd in enumerated)
        result.add_row(
            hypergraph=label,
            hypertree_width=width,
            enumerated_nf=len(enumerated),
            all_valid=all_valid,
            all_normal_form=all_nf,
            minimal_k_decomp_weight=algorithmic,
            brute_force_weight=brute,
            agreement=(algorithmic <= brute + 1e-9),
        )
    result.add_note(
        "The brute-force enumeration is capped, so its minimum is an upper bound; "
        "agreement requires the algorithmic weight to be at most that bound "
        "(they are equal when the cap is not hit)."
    )
    return result


def hardness_reduction_experiment() -> ExperimentResult:
    """Exercise the Theorem 3.3 and Theorem 5.1 reductions on tiny instances."""
    result = ExperimentResult(
        name="Hardness reductions (Theorems 3.3 and 5.1) on small instances",
        description="Minimal weights are 0 exactly on yes-instances.",
    )

    # --- Theorem 3.3: 3-colourability ---------------------------------
    graphs = {
        "path P3 (colourable)": (["a", "b", "c"], [("a", "b"), ("b", "c")]),
        "triangle K3 (colourable)": (
            ["a", "b", "c"],
            [("a", "b"), ("b", "c"), ("a", "c")],
        ),
        "clique K4 (not colourable)": (
            ["a", "b", "c", "d"],
            [
                ("a", "b"), ("a", "c"), ("a", "d"),
                ("b", "c"), ("b", "d"), ("c", "d"),
            ],
        ),
    }
    for label, (vertices, edges) in graphs.items():
        hwf = coloring_hwf(vertices, edges)
        colouring = brute_force_3coloring(vertices, edges)
        if colouring is not None:
            join_tree = coloring_join_tree(vertices, edges, colouring)
            weight = hwf.weigh(join_tree)
        else:
            # Every assignment-shaped join tree must get weight 1.
            weight = min(
                hwf.weigh(coloring_join_tree(vertices, edges, assignment))
                for assignment in _all_assignments(vertices)
            )
        result.add_row(
            reduction="Theorem 3.3 (3-colouring)",
            instance=label,
            yes_instance=colouring is not None,
            minimal_weight=weight,
            consistent=(weight == 0.0) == (colouring is not None),
        )

    # --- Theorem 5.1: acyclic BCQ evaluation ---------------------------
    query = build_query(
        [("r", ["X", "Y"]), ("s", ["Y", "Z"])], name="bcq"
    )
    yes_db = Database(
        relations={
            "r": Relation("r", ["X", "Y"], [(1, 2), (3, 4)]),
            "s": Relation("s", ["Y", "Z"], [(2, 5)]),
        }
    )
    no_db = Database(
        relations={
            "r": Relation("r", ["X", "Y"], [(1, 2), (3, 4)]),
            "s": Relation("s", ["Y", "Z"], [(7, 5)]),
        }
    )
    for label, database, expected in (
        ("matching tuples (true)", yes_db, True),
        ("no matching tuples (false)", no_db, False),
    ):
        weight = reduction_minimum_weight(query, database, k=1)
        result.add_row(
            reduction="Theorem 5.1 (acyclic BCQ)",
            instance=label,
            yes_instance=expected,
            minimal_weight=weight,
            consistent=(weight == 0.0) == expected,
        )
    return result


def _all_assignments(vertices: Sequence[str]):
    from itertools import product

    for colours in product(range(3), repeat=len(vertices)):
        yield dict(zip(vertices, colours))


def scalability_experiment(
    sizes: Sequence[int] = (4, 6, 8, 10),
    k: int = 2,
) -> ExperimentResult:
    """Planning time of minimal-k-decomp on growing chain and cycle queries."""
    result = ExperimentResult(
        name="Scalability -- minimal-k-decomp planning time",
        description=f"Width bound k={k}; the width TAF is minimised.",
    )
    for size in sizes:
        for family, query in (
            ("chain", chain_query(size, name=f"chain_{size}")),
            ("cycle", cycle_query(size, name=f"cycle_{size}")),
        ):
            hypergraph = query.hypergraph()
            started = time.perf_counter()
            decomposition = minimal_k_decomp(hypergraph, k, width_taf())
            elapsed = time.perf_counter() - started
            result.add_row(
                family=family,
                atoms=size,
                width=decomposition.width,
                nodes=decomposition.num_nodes(),
                seconds=elapsed,
            )
    return result
