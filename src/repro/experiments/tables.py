"""Experiment drivers for the paper's remaining figures, tables and worked
examples.

* :func:`fig1_experiment` -- the two width-2 decompositions of Q0 (Fig. 1):
  our optimal decomposition, its validity/normal-form status, and the
  hypertree width of ``H(Q0)``.
* :func:`example31_experiment` -- the lexicographic weights of Example 3.1
  (``ω^lex(HD') = 4·9⁰ + 3·9¹``, ``ω^lex(HD'') = 6·9⁰ + 1·9¹``) plus the
  minimum lexicographic weight over ``kNFD``.
* :func:`psi_table_experiment` -- the Ψ vs ``n^k`` comparison after
  Theorem 4.5 (k=3, n=5 → 25 vs 125; k=4, n=10 → 385 vs 10 000).
* :func:`fig6_7_experiment` -- the Q1 estimated plan costs for k = 2..5
  (the ``$`` labels of Figs. 6 and 7 and the costs quoted in Section 6):
  the paper's absolute numbers come from its private cost constants, so the
  reproduction checks the *shape* (monotone non-increasing in k with a
  plateau at the optimum) and reports both series side by side.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.decomposition.hypertree import HypertreeDecomposition
from repro.decomposition.kdecomp import hypertree_width, k_decomp
from repro.decomposition.minimal import minimal_k_decomp, minimum_weight
from repro.decomposition.normal_form import is_normal_form
from repro.decomposition.candidates import count_k_vertices
from repro.experiments.runner import ExperimentResult
from repro.planner.cost_k_decomp import cost_k_decomp, planning_family
from repro.query.examples import q0, q1
from repro.weights.library import lexicographic_taf, lexicographic_weight_of_histogram
from repro.workloads.paper_queries import (
    PAPER_Q1_ESTIMATED_COSTS,
    fig5_statistics,
)


# ----------------------------------------------------------------------
# Fig. 1 -- the Q0 example decompositions
# ----------------------------------------------------------------------
def paper_fig1_hd_prime() -> HypertreeDecomposition:
    """A width-2 decomposition of H(Q0) with the width histogram the paper
    reports for HD' (Fig. 1 right): 4 nodes of width 1 and 3 nodes of
    width 2, so ``ω^lex(HD') = 4·9⁰ + 3·9¹``.  The figure itself only appears
    as a picture in the paper, so the decomposition is reconstructed from
    that histogram."""
    hypergraph = q0().hypergraph()
    structure = {0: [1], 1: [2, 3], 2: [4, 5, 6], 3: [], 4: [], 5: [], 6: []}
    lambdas = {
        0: ["s1"],
        1: ["s2", "s3"],
        2: ["s4", "s5"],
        3: ["s3", "s6"],
        4: ["s7"],
        5: ["s8"],
        6: ["s4"],
    }
    chis = {
        0: ["A", "B", "D"],
        1: ["B", "C", "D", "E"],
        2: ["D", "E", "F", "G"],
        3: ["B", "E", "H"],
        4: ["F", "I"],
        5: ["G", "J"],
        6: ["D", "G"],
    }
    return HypertreeDecomposition.build(hypergraph, structure, lambdas, chis, root=0)


def paper_fig1_hd_second() -> HypertreeDecomposition:
    """A width-2 decomposition of H(Q0) with the width histogram the paper
    reports for HD'' (Fig. 1 bottom): 6 nodes of width 1 and a single node of
    width 2, so ``ω^lex(HD'') = 6·9⁰ + 1·9¹``.  The single width-2 node
    ``λ = {s1, s5}`` breaks the B-E-G-D cycle of H(Q0)."""
    hypergraph = q0().hypergraph()
    structure = {0: [1, 2, 3, 4, 5, 6], 1: [], 2: [], 3: [], 4: [], 5: [], 6: []}
    lambdas = {
        0: ["s1", "s5"],
        1: ["s2"],
        2: ["s3"],
        3: ["s4"],
        4: ["s6"],
        5: ["s7"],
        6: ["s8"],
    }
    chis = {
        0: ["A", "B", "D", "E", "F", "G"],
        1: ["B", "C", "D"],
        2: ["B", "E"],
        3: ["D", "G"],
        4: ["E", "H"],
        5: ["F", "I"],
        6: ["G", "J"],
    }
    return HypertreeDecomposition.build(hypergraph, structure, lambdas, chis, root=0)


def fig1_experiment() -> ExperimentResult:
    """Fig. 1: H(Q0) and two width-2 hypertree decompositions."""
    hypergraph = q0().hypergraph()
    result = ExperimentResult(
        name="Fig. 1 -- hypergraph H(Q0) and width-2 decompositions",
        description="The introductory example: Q0 is cyclic with hypertree width 2.",
    )
    width = hypertree_width(hypergraph)
    computed = k_decomp(hypergraph, 2)
    result.add_row(
        object="H(Q0)",
        atoms=hypergraph.num_edges(),
        variables=hypergraph.num_vertices(),
        hypertree_width=width,
    )
    for label, decomposition in (
        ("HD' (paper, Fig. 1 right)", _try_fig1(paper_fig1_hd_prime)),
        ("HD'' (paper, Fig. 1 bottom)", _try_fig1(paper_fig1_hd_second)),
        ("computed by k-decomp (k=2)", computed),
    ):
        if decomposition is None:
            result.add_row(object=label, valid=False)
            continue
        result.add_row(
            object=label,
            width=decomposition.width,
            nodes=decomposition.num_nodes(),
            valid=decomposition.is_valid(),
            normal_form=is_normal_form(decomposition),
        )
    result.add_note("Paper shape: both HD' and HD'' are valid width-2 decompositions.")
    return result


def _try_fig1(builder):
    try:
        decomposition = builder()
        return decomposition
    except Exception:  # pragma: no cover - defensive, the builders are static
        return None


# ----------------------------------------------------------------------
# Example 3.1 -- lexicographic weights
# ----------------------------------------------------------------------
def example31_experiment() -> ExperimentResult:
    """Example 3.1: the ω^lex weights of HD' and HD'' and the minimum over
    kNFD (k = 2)."""
    query = q0()
    hypergraph = query.hypergraph()
    base = hypergraph.num_edges() + 1
    taf = lexicographic_taf(hypergraph)

    hd_prime = paper_fig1_hd_prime()
    hd_second = paper_fig1_hd_second()
    weight_prime = taf.weigh(hd_prime)
    weight_second = taf.weigh(hd_second)
    minimum = minimum_weight(hypergraph, 2, taf)

    result = ExperimentResult(
        name="Example 3.1 -- lexicographic weighting of Q0's decompositions",
        description=f"ω^lex with radix B = |edges| + 1 = {base}.",
    )
    result.add_row(
        decomposition="HD'",
        weight=weight_prime,
        paper_expression="4·9⁰ + 3·9¹",
        paper_value=4 * base ** 0 + 3 * base ** 1,
        matches_paper=weight_prime == 4 + 3 * base,
    )
    result.add_row(
        decomposition="HD''",
        weight=weight_second,
        paper_expression="6·9⁰ + 1·9¹",
        paper_value=6 * base ** 0 + 1 * base ** 1,
        matches_paper=weight_second == 6 + base,
    )
    result.add_row(
        decomposition="minimum over kNFD (k=2), minimal-k-decomp",
        weight=minimum,
        paper_expression="≤ ω^lex(HD'')",
        paper_value=6 + base,
        matches_paper=minimum <= 6 + base,
    )
    result.add_note(
        "Paper shape: ω^lex(HD'') < ω^lex(HD') and HD'' is minimal among the "
        "paper's examples; minimal-k-decomp can only do at least as well."
    )
    return result


# ----------------------------------------------------------------------
# Section 4.2 -- Ψ vs n^k
# ----------------------------------------------------------------------
def psi_table_experiment() -> ExperimentResult:
    """The Ψ vs ``n^k`` remark after Theorem 4.5."""
    result = ExperimentResult(
        name="Section 4.2 -- Ψ vs n^k",
        description="Number of k-vertices Ψ = Σ_{i=1..k} C(n, i) against the crude bound n^k.",
    )
    for n, k, paper_psi in ((5, 3, 25), (10, 4, 385)):
        psi = count_k_vertices(n, k)
        result.add_row(
            n=n,
            k=k,
            psi=psi,
            n_to_k=n ** k,
            paper_psi=paper_psi,
            matches_paper=psi == paper_psi,
        )
    return result


# ----------------------------------------------------------------------
# Figs. 6 and 7 -- Q1 estimated plan costs over k
# ----------------------------------------------------------------------
def fig6_7_experiment(k_values: Sequence[int] = (2, 3, 4, 5)) -> ExperimentResult:
    """The Q1 estimated plan costs for k = 2..5 (Section 6, Figs. 6 and 7)."""
    statistics = fig5_statistics()
    query = q1()
    result = ExperimentResult(
        name="Figs. 6/7 -- estimated cost of the minimal Q1 plan per width bound k",
        description=(
            "cost-k-decomp over the exact Fig. 5 statistics; absolute values "
            "use this library's cost constants, the paper's are reported for "
            "shape comparison."
        ),
    )
    previous_cost: Optional[float] = None
    family = planning_family(query, statistics, completion="fresh")
    for k in k_values:
        plan = cost_k_decomp(query, statistics, k, completion="fresh", family=family)
        non_increasing = previous_cost is None or plan.estimated_cost <= previous_cost + 1e-9
        result.add_row(
            k=k,
            width=plan.width,
            estimated_cost=plan.estimated_cost,
            paper_estimated_cost=PAPER_Q1_ESTIMATED_COSTS.get(k),
            planning_s=plan.planning_seconds,
            non_increasing_vs_previous_k=non_increasing,
        )
        previous_cost = plan.estimated_cost
    result.add_note(
        "Paper shape: 3 521 741 (k=2) > 1 373 879 (k=3) > 854 867 (k=4) = 854 867 (k=5): "
        "strictly decreasing up to k=4, then a plateau.  The reproduction checks that the "
        "estimated cost is non-increasing in k and plateaus once the optimum is reached."
    )
    return result
