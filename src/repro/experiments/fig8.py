"""Experiment drivers for the paper's Fig. 8 (Section 6).

* :func:`fig8a_experiment` -- Q1, k = 2..5: for every width bound, the
  planning time, estimated cost, evaluation work and the baseline/structural
  ratios.  The paper plots the ratio of evaluation times (CommDB vs
  cost-k-decomp); we report both the evaluation-work ratio and the total-time
  ratio (which includes plan-computation time and therefore reproduces the
  rise-then-fall shape of Fig. 8(A)).
* :func:`fig8b_experiment` -- Q2 and Q3 at a fixed k: absolute evaluation
  measurements for the baseline and the structural plan, the Fig. 8(B) bars.

Both default to cardinalities small enough for pure-Python evaluation (the
paper used 1500-tuple relations on a C engine); the density regime
(cardinality well above the attribute domain sizes) is preserved, which is
what determines who wins and how the ratio moves with ``k``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.runner import ExperimentResult
from repro.planner.compare import ComparisonReport, compare_planners
from repro.query.examples import q1, q2, q3
from repro.workloads.paper_queries import fig8_database


def fig8a_experiment(
    tuples_per_relation: int = 300,
    k_values: Sequence[int] = (2, 3, 4, 5),
    seed: int = 3,
    budget: Optional[int] = 6_000_000,
    columnar: bool = True,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    plan_cache=None,
) -> ExperimentResult:
    """Fig. 8(A): Q1, sweep of the width bound ``k``.

    ``columnar`` selects the execution engine (the row-based reference with
    ``False``).  For plans that complete, the work counters are
    engine-independent and only the seconds move; a budget-aborted plan
    reports the work-so-far lower bound, which depends on where the engine
    stopped (the columnar join aborts with the exact would-be total, the
    row join one probe batch past the budget).

    The database comes through the storage plane's workload cache (when
    ``REPRO_WORKLOAD_CACHE_DIR`` is configured a repeat run mmaps the
    stored columns instead of regenerating), and ``plan_cache`` (a
    :class:`repro.db.storage.PlanCache`) replays the winning plans of a
    previous sweep with zero planning time.
    """
    query = q1()
    database = fig8_database(
        query,
        tuples_per_relation=tuples_per_relation,
        seed=seed,
        columnar=columnar,
    )
    report = compare_planners(
        query, database, k_values=k_values, completion="fresh", budget=budget,
        threads=threads, memory_budget_bytes=memory_budget_bytes,
        plan_cache=plan_cache,
    )
    result = ExperimentResult(
        name="Fig. 8(A) -- Q1, cost-k-decomp vs quantitative-only baseline",
        description=(
            f"Q1 over {tuples_per_relation}-tuple relations with the Fig. 5 "
            "attribute selectivities; ratios are baseline/structural (higher "
            "favours the structural plan)."
        ),
    )
    base = report.baseline
    result.add_row(
        plan=base.label,
        k=None,
        width=None,
        planning_s=base.planning_seconds,
        evaluation_s=base.evaluation_seconds,
        evaluation_work=base.evaluation_work,
        estimated_cost=base.estimated_cost,
        budget_exceeded=base.budget_exceeded,
        work_ratio=None,
        total_time_ratio=None,
    )
    for k in sorted(report.structural):
        measurement = report.structural[k]
        result.add_row(
            plan=measurement.label,
            k=k,
            width=measurement.width,
            planning_s=measurement.planning_seconds,
            evaluation_s=measurement.evaluation_seconds,
            evaluation_work=measurement.evaluation_work,
            estimated_cost=measurement.estimated_cost,
            budget_exceeded=measurement.budget_exceeded,
            work_ratio=report.work_ratio(k),
            total_time_ratio=report.time_ratio(k, include_planning=True),
        )
    result.add_note(
        "Paper shape: the estimated plan cost decreases as k grows and "
        "plateaus at the optimum; the time ratio rises with k until the "
        "plan-computation overhead at the largest k pulls it back down."
    )
    result.add_note(
        "The baseline here is an idealised in-memory left-deep optimiser "
        "with exact statistics, which is stronger than the 2004 commercial "
        "system the paper measured; see EXPERIMENTS.md for the discussion."
    )
    return result


def fig8b_experiment(
    tuples_per_relation: int = 150,
    selectivity: int = 40,
    k: int = 3,
    seed: int = 11,
    budget: Optional[int] = 6_000_000,
    columnar: bool = True,
    threads: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    plan_cache=None,
) -> ExperimentResult:
    """Fig. 8(B): absolute evaluation measurements for Q2 and Q3 at ``k``
    (workload cache and ``plan_cache`` as in :func:`fig8a_experiment`)."""
    result = ExperimentResult(
        name="Fig. 8(B) -- Q2 and Q3, baseline vs cost-k-decomp",
        description=(
            f"{tuples_per_relation}-tuple relations, attribute domain size "
            f"{selectivity}, k={k}; work is tuples read + emitted."
        ),
    )
    for query in (q2(), q3()):
        database = fig8_database(
            query,
            tuples_per_relation=tuples_per_relation,
            selectivity=selectivity,
            seed=seed,
            columnar=columnar,
        )
        report = compare_planners(
            query, database, k_values=(k,), completion="fresh", budget=budget,
            threads=threads, memory_budget_bytes=memory_budget_bytes,
            plan_cache=plan_cache,
        )
        base = report.baseline
        structural = report.structural[k]
        result.add_row(
            query=query.name,
            plan=base.label,
            evaluation_s=base.evaluation_seconds,
            evaluation_work=base.evaluation_work,
            budget_exceeded=base.budget_exceeded,
            answer=base.answer_cardinality,
        )
        result.add_row(
            query=query.name,
            plan=structural.label,
            evaluation_s=structural.evaluation_seconds,
            evaluation_work=structural.evaluation_work,
            budget_exceeded=structural.budget_exceeded,
            answer=structural.answer_cardinality,
            work_ratio=report.work_ratio(k),
        )
    result.add_note(
        "Paper shape: on both queries the structural plan evaluates "
        "significantly faster than the quantitative-only plan."
    )
    return result


def fig8_all(seed: int = 3) -> Dict[str, ExperimentResult]:
    """Both Fig. 8 experiments with default parameters."""
    return {
        "fig8a": fig8a_experiment(seed=seed),
        "fig8b": fig8b_experiment(seed=seed + 8),
    }
