"""The Theorem 3.3 reduction: 3-colourability → minimal weighted join trees.

Theorem 3.3 proves that computing an ``[ω_H, C_H]``-minimal hypertree
decomposition is NP-hard for general hypertree weighting functions, even when
the class ``C_H`` is just the join trees of an acyclic hypergraph.  The proof
maps a graph ``G`` to

* an acyclic hypergraph ``H(G)`` with one "big" hyperedge
  ``g = V̄ ∪ {C}``, a hyperedge ``{V'_i, C}`` per vertex, and a hyperedge
  ``{V_j, V_t}`` per edge of ``G``; and
* an HWF ``ω_{H(G)}`` that gives weight 0 exactly to the join trees encoding
  a legal 3-colouring (the primed vertex edges hang below at most three
  children of the node covering ``g``, and no two adjacent vertices share a
  subtree) and weight 1 to every other join tree.

The minimal weight over all join trees is therefore 0 iff ``G`` is
3-colourable.  We implement the construction faithfully so its behaviour can
be exercised empirically on small graphs (the hardness itself is, of course,
not something to "run").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.decomposition.hypertree import HypertreeDecomposition
from repro.decomposition.join_tree import join_tree_to_decomposition
from repro.hypergraph.acyclicity import JoinTree, all_join_trees
from repro.hypergraph.hypergraph import Hypergraph
from repro.weights.hwf import CallableHWF

Edge = Tuple[str, str]


def coloring_hypergraph(vertices: Sequence[str], edges: Iterable[Edge]) -> Hypergraph:
    """``H(G)`` of the Theorem 3.3 construction.

    Hyperedge names: ``big`` for ``g = V̄ ∪ {C}``, ``prime_<v>`` for
    ``{V'_v, C}``, and ``edge_<u>_<v>`` for each graph edge.
    """
    hyperedges: Dict[str, List[str]] = {}
    hyperedges["big"] = [f"V_{v}" for v in vertices] + ["C"]
    for v in vertices:
        hyperedges[f"prime_{v}"] = [f"Vp_{v}", "C"]
    for u, v in edges:
        hyperedges[f"edge_{u}_{v}"] = [f"V_{u}", f"V_{v}"]
    return Hypergraph(hyperedges)


def coloring_hwf(
    vertices: Sequence[str], edges: Iterable[Edge]
) -> CallableHWF:
    """The HWF ``ω_{H(G)}``: weight 0 iff the join tree encodes a legal
    3-colouring of ``G`` (conditions (1) and (2) in the proof of
    Theorem 3.3), else weight 1."""
    edge_set: Set[FrozenSet[str]] = {frozenset(e) for e in edges}
    vertex_list = list(vertices)

    def weight(decomposition: HypertreeDecomposition) -> float:
        hypergraph = decomposition.hypergraph
        # Locate the node covering the big hyperedge with χ = V̄ ∪ {C}.
        big_vars = hypergraph.edge_vertices("big")
        root_candidates = [
            node for node in decomposition.nodes() if node.chi == big_vars
        ]
        if not root_candidates:
            return 1.0
        anchor = root_candidates[0]

        # Group the prime edges by the child subtree of the anchor they live in.
        children = decomposition.children(anchor.node_id)
        subtree_of: Dict[int, FrozenSet[int]] = {
            child: frozenset(decomposition.subtree_ids(child)) for child in children
        }

        def holder_subtree(vertex_name: str):
            """The anchor child whose subtree covers ``{V'_v, C}``, or None."""
            target = hypergraph.edge_vertices(f"prime_{vertex_name}")
            for child, ids in subtree_of.items():
                if any(
                    target <= decomposition.node(node_id).chi for node_id in ids
                ):
                    return child
            return None

        assignment: Dict[str, object] = {}
        for vertex in vertex_list:
            child = holder_subtree(vertex)
            if child is None:
                # The prime edge is covered elsewhere (e.g. at the anchor
                # itself) -- not a colouring-shaped tree.
                return 1.0
            assignment[vertex] = child

        # Condition (1): at most 3 subtrees host prime edges.
        if len(set(assignment.values())) > 3:
            return 1.0
        # Condition (2): no graph edge inside a single subtree.
        for u in vertex_list:
            for v in vertex_list:
                if u < v and frozenset({u, v}) in edge_set:
                    if assignment[u] == assignment[v]:
                        return 1.0
        return 0.0

    return CallableHWF(weight, name="coloring-hwf")


def coloring_join_tree(
    vertices: Sequence[str],
    edges: Iterable[Edge],
    coloring: Dict[str, int],
) -> HypertreeDecomposition:
    """The width-1 decomposition (join tree) encoding a given 3-colouring,
    following the "only if" direction of the Theorem 3.3 proof: the root
    covers ``g``; one child per used colour hosts the prime edges of the
    vertices with that colour; the graph-edge hyperedges hang off the root."""
    hypergraph = coloring_hypergraph(vertices, edges)
    structure: Dict[int, List[int]] = {}
    lambdas: Dict[int, List[str]] = {}
    chis: Dict[int, List[str]] = {}

    root = 0
    lambdas[root] = ["big"]
    chis[root] = list(hypergraph.edge_vertices("big"))
    structure[root] = []
    next_id = 1

    colour_anchor: Dict[int, int] = {}
    for vertex in vertices:
        colour = coloring[vertex]
        if colour not in colour_anchor:
            anchor_id = next_id
            next_id += 1
            first_vertex = vertex
            lambdas[anchor_id] = [f"prime_{first_vertex}"]
            chis[anchor_id] = list(hypergraph.edge_vertices(f"prime_{first_vertex}"))
            structure[anchor_id] = []
            structure[root].append(anchor_id)
            colour_anchor[colour] = anchor_id
        else:
            node_id = next_id
            next_id += 1
            lambdas[node_id] = [f"prime_{vertex}"]
            chis[node_id] = list(hypergraph.edge_vertices(f"prime_{vertex}"))
            structure[node_id] = []
            structure[colour_anchor[colour]].append(node_id)

    for u, v in edges:
        node_id = next_id
        next_id += 1
        lambdas[node_id] = [f"edge_{u}_{v}"]
        chis[node_id] = list(hypergraph.edge_vertices(f"edge_{u}_{v}"))
        structure[node_id] = []
        structure[root].append(node_id)

    return HypertreeDecomposition.build(
        hypergraph=hypergraph,
        structure=structure,
        lambdas=lambdas,
        chis=chis,
        root=root,
    )


def is_legal_coloring(
    edges: Iterable[Edge], coloring: Dict[str, int], num_colors: int = 3
) -> bool:
    """Check a candidate colouring."""
    if any(c < 0 or c >= num_colors for c in coloring.values()):
        return False
    return all(coloring[u] != coloring[v] for u, v in edges)


def brute_force_3coloring(
    vertices: Sequence[str], edges: Iterable[Edge]
) -> Dict[str, int] | None:
    """A reference 3-colouring solver (exponential; for small test graphs)."""
    edge_list = list(edges)
    vertex_list = list(vertices)

    def backtrack(index: int, assignment: Dict[str, int]):
        if index == len(vertex_list):
            return dict(assignment)
        vertex = vertex_list[index]
        for colour in range(3):
            assignment[vertex] = colour
            if all(
                assignment.get(u) != assignment.get(v)
                for u, v in edge_list
                if u in assignment and v in assignment
            ):
                found = backtrack(index + 1, assignment)
                if found is not None:
                    return found
            del assignment[vertex]
        return None

    return backtrack(0, {})
