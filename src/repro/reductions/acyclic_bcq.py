"""The Theorem 5.1 reduction: acyclic BCQ evaluation → weighted NF decompositions.

Theorem 5.1 shows LOGCFL-hardness of the threshold problem for smooth TAFs by
reducing the (LOGCFL-complete) evaluation of an acyclic Boolean conjunctive
query ``Q`` over a database ``DB`` to the question "is there a normal-form
decomposition of weight ≤ 0?".

The construction builds a hypergraph ``H`` whose variables are the query
variables plus one variable per database tuple, and whose hyperedges are

* ``h_i  = X̄_i ∪ R_i``  (one per query atom ``s_i``: the atom's variables
  together with *all* tuple variables of its relation), and
* ``h_ij = X̄_i ∪ {T_j}`` (one per tuple ``T_j ∈ R_i``: the atom's variables
  together with that tuple's variable),

and a smooth TAF ``F^{+,v,e}`` with

* ``v(p) = max(|λ(p)| - 1, |var(λ(p)) - χ(p)|)`` (0 exactly for singleton-λ
  nodes of the form ``h_i`` or ``h_ij`` whose χ equals their variables), and
* ``e(r, s) = 0`` iff the two nodes encode matching tuple choices, or a tuple
  choice next to its atom's "all tuples" node; 1 otherwise.

Then the minimum weight over ``kNFD_H`` is 0 iff ``Q`` is true on ``DB``.
We implement the construction and, for testing, the decoding of a weight-0
decomposition back into a satisfying assignment.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.db.database import Database
from repro.decomposition.hypertree import DecompositionNode, HypertreeDecomposition
from repro.exceptions import ReproError
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.conjunctive import ConjunctiveQuery
from repro.weights.semiring import SUM_MIN
from repro.weights.taf import TreeAggregationFunction


class BCQReduction:
    """The Theorem 5.1 construction for one (acyclic) query/database pair."""

    def __init__(self, query: ConjunctiveQuery, database: Database) -> None:
        if not query.is_boolean:
            raise ReproError("the Theorem 5.1 reduction applies to Boolean queries")
        self.query = query
        self.database = database

        #: tuple variable name -> (atom name, row)
        self.tuple_rows: Dict[str, Tuple[str, tuple]] = {}
        #: atom name -> list of its tuple variable names
        self.tuples_of_atom: Dict[str, List[str]] = {}

        edges: Dict[str, List[str]] = {}
        for atom in query.atoms:
            bound = database.bind_atom(atom)
            atom_vars = list(atom.variables)
            tuple_vars: List[str] = []
            for index, row in enumerate(sorted(bound.rows)):
                tuple_var = f"T_{atom.name}_{index}"
                self.tuple_rows[tuple_var] = (atom.name, row)
                tuple_vars.append(tuple_var)
                edges[f"h_{atom.name}_{index}"] = atom_vars + [tuple_var]
            self.tuples_of_atom[atom.name] = tuple_vars
            edges[f"h_{atom.name}"] = atom_vars + tuple_vars
        self.hypergraph = Hypergraph(edges)
        #: variable name order of each atom's bound relation (for matching).
        self._bound_attributes = {
            atom.name: database.bind_atom(atom).attributes for atom in query.atoms
        }

    # ------------------------------------------------------------------
    def _binding_of(self, tuple_var: str) -> Dict[str, object]:
        """The variable -> value binding a tuple variable stands for."""
        atom_name, row = self.tuple_rows[tuple_var]
        return dict(zip(self._bound_attributes[atom_name], row))

    def _node_kind(self, node: DecompositionNode) -> Optional[Tuple[str, Optional[str]]]:
        """Classify a node: ``(atom, tuple_var)`` for an ``h_ij`` node,
        ``(atom, None)`` for an ``h_i`` node, ``None`` otherwise."""
        if len(node.lambda_edges) != 1:
            return None
        edge_name = next(iter(node.lambda_edges))
        if not edge_name.startswith("h_"):
            return None
        remainder = edge_name[2:]
        for atom in self.query.atoms:
            if remainder == atom.name:
                return (atom.name, None)
            prefix = f"{atom.name}_"
            if remainder.startswith(prefix):
                index = remainder[len(prefix):]
                tuple_var = f"T_{atom.name}_{index}"
                if tuple_var in self.tuple_rows:
                    return (atom.name, tuple_var)
        return None

    # ------------------------------------------------------------------
    def taf(self) -> TreeAggregationFunction:
        """The smooth TAF ``F^{+,v,e}`` of the proof."""
        hypergraph = self.hypergraph

        def vertex_weight(node: DecompositionNode) -> float:
            lambda_size_penalty = len(node.lambda_edges) - 1
            uncovered = len(hypergraph.var(node.lambda_edges) - node.chi)
            return float(max(lambda_size_penalty, uncovered, 0))

        def edge_weight(parent: DecompositionNode, child: DecompositionNode) -> float:
            parent_kind = self._node_kind(parent)
            child_kind = self._node_kind(child)
            if parent_kind is None or child_kind is None:
                return 1.0
            parent_atom, parent_tuple = parent_kind
            child_atom, child_tuple = child_kind
            # Tuple-choice node adjacent to its own atom's "all tuples" node.
            if parent_tuple is not None and child_tuple is None:
                return 0.0 if parent_atom == child_atom else 1.0
            if parent_tuple is None and child_tuple is not None:
                return 0.0 if parent_atom == child_atom else 1.0
            if parent_tuple is None and child_tuple is None:
                return 1.0
            # Two tuple choices: they must agree on their shared variables.
            parent_binding = self._binding_of(parent_tuple)
            child_binding = self._binding_of(child_tuple)
            shared = set(parent_binding) & set(child_binding)
            matches = all(parent_binding[v] == child_binding[v] for v in shared)
            return 0.0 if matches else 1.0

        return TreeAggregationFunction(
            semiring=SUM_MIN,
            vertex_weight=vertex_weight,
            edge_weight=edge_weight,
            name="theorem-5.1",
            smooth=True,
        )

    # ------------------------------------------------------------------
    def decode_assignment(
        self, decomposition: HypertreeDecomposition
    ) -> Optional[Dict[str, tuple]]:
        """Extract the tuple assignment encoded by a weight-0 decomposition:
        the chosen tuple (row) for every atom, or ``None`` if some atom has
        no tuple-choice node in the decomposition."""
        chosen: Dict[str, tuple] = {}
        for node in decomposition.nodes():
            kind = self._node_kind(node)
            if kind is None or kind[1] is None:
                continue
            atom_name, tuple_var = kind
            if atom_name not in chosen:
                chosen[atom_name] = self.tuple_rows[tuple_var][1]
        if len(chosen) != len(self.query.atoms):
            return None
        return chosen

    def assignment_is_satisfying(self, assignment: Dict[str, tuple]) -> bool:
        """Check that the per-atom tuple choices agree on shared variables."""
        bindings: Dict[str, Dict[str, object]] = {}
        for atom in self.query.atoms:
            row = assignment.get(atom.name)
            if row is None:
                return False
            bindings[atom.name] = dict(zip(self._bound_attributes[atom.name], row))
        for first in self.query.atoms:
            for second in self.query.atoms:
                if first.name >= second.name:
                    continue
                shared = set(bindings[first.name]) & set(bindings[second.name])
                for variable in shared:
                    if bindings[first.name][variable] != bindings[second.name][variable]:
                        return False
        return True


def reduction_minimum_weight(
    query: ConjunctiveQuery, database: Database, k: int = 1
) -> float:
    """Convenience: the minimum TAF weight over ``kNFD`` of the reduction's
    hypergraph (0 iff the BCQ is true, per Theorem 5.1)."""
    from repro.decomposition.minimal import minimum_weight

    reduction = BCQReduction(query, database)
    return minimum_weight(reduction.hypergraph, k, reduction.taf())
