"""The paper's hardness reductions, implemented so they can be exercised
empirically on small instances (Theorems 3.3 and 5.1)."""

from repro.reductions.coloring import (
    brute_force_3coloring,
    coloring_hwf,
    coloring_hypergraph,
    coloring_join_tree,
    is_legal_coloring,
)
from repro.reductions.acyclic_bcq import BCQReduction, reduction_minimum_weight

__all__ = [
    "brute_force_3coloring",
    "coloring_hwf",
    "coloring_hypergraph",
    "coloring_join_tree",
    "is_legal_coloring",
    "BCQReduction",
    "reduction_minimum_weight",
]
