"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  The more specific subclasses mirror the layers
of the system: hypergraphs, queries, decompositions, weighting functions, the
relational substrate and the planner.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class HypergraphError(ReproError):
    """Malformed hypergraph, unknown vertex/edge, or disconnected input
    where a connected hypergraph is required."""


class QueryError(ReproError):
    """Malformed conjunctive query or query parsing failure."""


class DecompositionError(ReproError):
    """A hypertree violates the hypertree-decomposition conditions, or a
    decomposition-producing algorithm was asked for something impossible."""


class NoDecompositionExistsError(DecompositionError):
    """Raised when no decomposition of the requested width exists.

    This mirrors the ``failure`` output of the paper's algorithms
    (minimal-k-decomp, k-decomp): the hypergraph has hypertree width
    greater than the requested bound ``k``.
    """

    def __init__(self, k: int, message: str | None = None) -> None:
        self.k = k
        if message is None:
            message = f"no normal-form hypertree decomposition of width <= {k} exists"
        super().__init__(message)


class WeightingError(ReproError):
    """Invalid weighting function (e.g. a broken semiring) or an attempt to
    evaluate a weighting function on an incompatible decomposition."""


class DatabaseError(ReproError):
    """Schema mismatch, unknown relation, or invalid relational operation."""


class StorageFormatError(DatabaseError):
    """A stored database (or cache entry) cannot be read back: unknown
    format marker, unsupported format version, a missing or truncated
    column file, or a dictionary value of a type the on-disk format cannot
    represent.  Raised instead of a raw ``KeyError``/``ValueError`` so
    callers can distinguish "this directory is not (this version of) a
    stored database" from genuine I/O failures."""


class PlanningError(ReproError):
    """Query-planning failure (e.g. the query has hypertree width larger than
    the planner's bound and no fallback was requested)."""
