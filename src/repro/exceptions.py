"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  The more specific subclasses mirror the layers
of the system: hypergraphs, queries, decompositions, weighting functions, the
relational substrate and the planner.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class HypergraphError(ReproError):
    """Malformed hypergraph, unknown vertex/edge, or disconnected input
    where a connected hypergraph is required."""


class QueryError(ReproError):
    """Malformed conjunctive query or query parsing failure."""


class DecompositionError(ReproError):
    """A hypertree violates the hypertree-decomposition conditions, or a
    decomposition-producing algorithm was asked for something impossible."""


class NoDecompositionExistsError(DecompositionError):
    """Raised when no decomposition of the requested width exists.

    This mirrors the ``failure`` output of the paper's algorithms
    (minimal-k-decomp, k-decomp): the hypergraph has hypertree width
    greater than the requested bound ``k``.
    """

    def __init__(self, k: int, message: str | None = None) -> None:
        self.k = k
        if message is None:
            message = f"no normal-form hypertree decomposition of width <= {k} exists"
        super().__init__(message)


class WeightingError(ReproError):
    """Invalid weighting function (e.g. a broken semiring) or an attempt to
    evaluate a weighting function on an incompatible decomposition."""


class DatabaseError(ReproError):
    """Schema mismatch, unknown relation, or invalid relational operation."""


class PlanningError(ReproError):
    """Query-planning failure (e.g. the query has hypertree width larger than
    the planner's bound and no fallback was requested)."""
