#!/usr/bin/env python3
"""Smoke test: the paper workload on the columnar execution engine.

Loads the Q1 workload (Fig. 5 attribute selectivities), plans it with both
planners -- the quantitative-only left-deep baseline and cost-k-decomp --
and executes both plans through the shared plan-node IR on the columnar
engine.  The run asserts that

* both plans return the same answer (the correctness cross-check of the
  Fig. 8 comparisons),
* the columnar engine's work counters match the row-based reference engine
  byte for byte on the same data, and
* the parallel, memory-bounded execution plane (``threads=4`` plus a small
  per-kernel memory budget) returns byte-identical answers and counters to
  the serial unbounded run.

Run with::

    python examples/columnar_smoke.py
"""

from __future__ import annotations

from repro.db.columnar import ColumnarRelation
from repro.planner.baseline import baseline_plan
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.examples import q1
from repro.workloads.paper_queries import fig8_database


def main() -> None:
    query = q1()
    database = fig8_database(query, tuples_per_relation=150, seed=3, columnar=True)
    stored = database.relation(query.atoms[0].predicate)
    assert isinstance(stored, ColumnarRelation), "database should be columnar"
    print(database.describe())
    print(f"dictionary: {len(database.dictionary)} interned values")
    print()

    budget = 10_000_000
    baseline = baseline_plan(query, database.statistics)
    baseline_result = baseline.to_ir().execute(database, budget=budget)
    print(baseline.describe())
    print(f"  -> work={baseline_result.stats.total_work:,} "
          f"answer={baseline_result.cardinality}")

    structural = cost_k_decomp(query, database.statistics, 3, completion="fresh")
    structural_result = structural.to_ir().execute(database, budget=budget)
    print(structural.describe())
    print(f"  -> work={structural_result.stats.total_work:,} "
          f"answer={structural_result.cardinality}")

    assert baseline_result.cardinality == structural_result.cardinality, (
        "planners disagree on the answer"
    )

    # Cross-check the engines: same data in the row-based reference engine
    # must yield byte-identical work counters for both plans.
    reference = fig8_database(query, tuples_per_relation=150, seed=3, columnar=False)
    for plan, columnar_result in (
        (baseline, baseline_result),
        (structural, structural_result),
    ):
        row_result = plan.to_ir().execute(reference, budget=budget)
        assert row_result.cardinality == columnar_result.cardinality
        assert row_result.stats.snapshot() == columnar_result.stats.snapshot(), (
            "work counters differ between engines"
        )

    # Serial vs the parallel, memory-bounded plane: same plans, same
    # database, threads=4 and a 64 KiB kernel budget -- answers and every
    # counter must be byte-identical to the serial unbounded run.
    for plan, serial_result in (
        (baseline, baseline_result),
        (structural, structural_result),
    ):
        parallel_result = plan.to_ir().execute(
            database, budget=budget, threads=4, memory_budget_bytes=64 * 1024
        )
        assert parallel_result.cardinality == serial_result.cardinality, (
            "parallel plane changed the answer"
        )
        assert parallel_result.stats.snapshot() == serial_result.stats.snapshot(), (
            "parallel plane changed the work counters"
        )

    print()
    print("OK: both planners agree, the engines' work counters are identical,")
    print("and the parallel memory-bounded plane matches the serial run.")


if __name__ == "__main__":
    main()
