#!/usr/bin/env python3
"""Structure-aware planning on data-warehouse-style populating queries.

The paper motivates weighted hypertree decompositions with the queries used
to populate or refresh a data warehouse (Section 6): long join queries over
the reconciled schema -- "often long queries involving many join operations
... not very intricate and have low hypertree width, though not necessarily
acyclic".

This example builds such a workload -- a long cyclic join (a ring of
dimension hops) and an acyclic snowflake -- over synthetic databases whose
relations are much larger than their attribute domains (the regime where join
orders matter), and compares:

* the quantitative-only left-deep plan (what a classical optimiser produces),
* the cost-k-decomp plan (structure + statistics).

A warehouse is populated repeatedly, so the example ends with the storage
plane's cold-vs-warm story: the generated database is saved once in the
mmap-able columnar format, reopened with zero interning, shown to answer
byte-identically, and the second (warm) open is reported as a workload
cache hit -- together with a persistent plan cache replaying the winning
plans with zero planning time.

Run with::

    python examples/datawarehouse_workload.py
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.db.storage import (
    PlanCache,
    reset_workload_cache_stats,
    workload_cache_dir,
    workload_cache_stats,
)
from repro.decomposition.kdecomp import hypertree_width
from repro.planner.compare import compare_planners
from repro.workloads.synthetic import cycle_query, snowflake_query, workload_database


def run_case(query, database, k_values=(2, 3)) -> None:
    width = hypertree_width(query.hypergraph())
    print(f"--- {query.name}: {len(query.atoms)} atoms, hypertree width {width}")
    report = compare_planners(query, database, k_values=k_values, budget=5_000_000)
    base = report.baseline
    print(
        f"  left-deep baseline : work={base.evaluation_work:>10,}  "
        f"time={base.evaluation_seconds:.2f}s"
        + ("  [exceeded budget]" if base.budget_exceeded else "")
    )
    for k in sorted(report.structural):
        m = report.structural[k]
        print(
            f"  cost-{k}-decomp     : work={m.evaluation_work:>10,}  "
            f"time={m.evaluation_seconds:.2f}s  "
            f"(baseline/structural work ratio {report.work_ratio(k):.1f}x)"
        )
    print()


def run_cold_vs_warm() -> None:
    """Generate + save once, reopen warm, and verify the round trip: the
    reopened database answers byte-identically (rows *and* OperatorStats),
    the second open is a cache hit, and a plan-cache hit skips planning."""
    print("--- cold vs warm: the persistent storage plane")
    scratch = Path(tempfile.mkdtemp(prefix="repro-storage-demo-"))
    if workload_cache_dir(scratch / "workloads") is None:
        # REPRO_WORKLOAD_CACHE=0 force-disables caching even over an
        # explicit directory; there is no cold-vs-warm story to tell then.
        print("  workload cache force-disabled (REPRO_WORKLOAD_CACHE=0); skipping")
        print()
        shutil.rmtree(scratch, ignore_errors=True)
        return
    ring = cycle_query(8, name="dw_ring")

    reset_workload_cache_stats()
    started = time.perf_counter()
    cold_db = workload_database(
        ring, tuples_per_relation=150, domain_size=40, seed=11,
        cache_dir=scratch / "workloads",
    )
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm_db = workload_database(
        ring, tuples_per_relation=150, domain_size=40, seed=11,
        cache_dir=scratch / "workloads",
    )
    warm_seconds = time.perf_counter() - started
    counters = workload_cache_stats()
    assert counters == {"hits": 1, "misses": 1}, counters

    plan_cache = PlanCache(scratch / "plans")
    cold_report = compare_planners(
        ring, cold_db, k_values=(2,), budget=5_000_000, plan_cache=plan_cache
    )
    warm_report = compare_planners(
        ring, warm_db, k_values=(2,), budget=5_000_000, plan_cache=plan_cache
    )
    for cold_m, warm_m in (
        (cold_report.baseline, warm_report.baseline),
        (cold_report.structural[2], warm_report.structural[2]),
    ):
        assert warm_m.answer_cardinality == cold_m.answer_cardinality
        assert warm_m.evaluation_work == cold_m.evaluation_work
        assert warm_m.planning_seconds == 0.0  # plan-cache hit
    assert plan_cache.hits >= 2, plan_cache.stats()

    print(
        f"  cold generate+intern : {cold_seconds * 1000:7.1f} ms  (cache miss)"
    )
    print(
        f"  warm mmap open       : {warm_seconds * 1000:7.1f} ms  (cache hit; "
        f"{cold_seconds / max(warm_seconds, 1e-9):.0f}x faster)"
    )
    print(
        "  round trip verified  : identical answers, row order and "
        "OperatorStats; plan cache replayed both plans with "
        "planning_seconds=0.0"
    )
    print()
    shutil.rmtree(scratch, ignore_errors=True)


def main() -> None:
    # A long cyclic populating query: a ring of 8 joins.
    ring = cycle_query(8, name="dw_ring")
    ring_db = workload_database(ring, tuples_per_relation=150, domain_size=40, seed=11)
    run_case(ring, ring_db)

    # An acyclic snowflake: 3 arms of 3 hops each around a hub.
    snowflake = snowflake_query(3, 3, name="dw_snowflake")
    snowflake_db = workload_database(
        snowflake, tuples_per_relation=150, domain_size=40, seed=7
    )
    run_case(snowflake, snowflake_db, k_values=(1, 2))

    run_cold_vs_warm()

    print(
        "On the cyclic workload every left-deep order must materialise a large\n"
        "intermediate result, while the hypertree plan keeps each cluster small\n"
        "and prunes with semijoins -- the effect behind Fig. 8 of the paper."
    )


if __name__ == "__main__":
    main()
