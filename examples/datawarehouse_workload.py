#!/usr/bin/env python3
"""Structure-aware planning on data-warehouse-style populating queries.

The paper motivates weighted hypertree decompositions with the queries used
to populate or refresh a data warehouse (Section 6): long join queries over
the reconciled schema -- "often long queries involving many join operations
... not very intricate and have low hypertree width, though not necessarily
acyclic".

This example builds such a workload -- a long cyclic join (a ring of
dimension hops) and an acyclic snowflake -- over synthetic databases whose
relations are much larger than their attribute domains (the regime where join
orders matter), and compares:

* the quantitative-only left-deep plan (what a classical optimiser produces),
* the cost-k-decomp plan (structure + statistics).

Run with::

    python examples/datawarehouse_workload.py
"""

from __future__ import annotations

from repro.decomposition.kdecomp import hypertree_width
from repro.planner.compare import compare_planners
from repro.workloads.synthetic import cycle_query, snowflake_query, workload_database


def run_case(query, database, k_values=(2, 3)) -> None:
    width = hypertree_width(query.hypergraph())
    print(f"--- {query.name}: {len(query.atoms)} atoms, hypertree width {width}")
    report = compare_planners(query, database, k_values=k_values, budget=5_000_000)
    base = report.baseline
    print(
        f"  left-deep baseline : work={base.evaluation_work:>10,}  "
        f"time={base.evaluation_seconds:.2f}s"
        + ("  [exceeded budget]" if base.budget_exceeded else "")
    )
    for k in sorted(report.structural):
        m = report.structural[k]
        print(
            f"  cost-{k}-decomp     : work={m.evaluation_work:>10,}  "
            f"time={m.evaluation_seconds:.2f}s  "
            f"(baseline/structural work ratio {report.work_ratio(k):.1f}x)"
        )
    print()


def main() -> None:
    # A long cyclic populating query: a ring of 8 joins.
    ring = cycle_query(8, name="dw_ring")
    ring_db = workload_database(ring, tuples_per_relation=150, domain_size=40, seed=11)
    run_case(ring, ring_db)

    # An acyclic snowflake: 3 arms of 3 hops each around a hub.
    snowflake = snowflake_query(3, 3, name="dw_snowflake")
    snowflake_db = workload_database(
        snowflake, tuples_per_relation=150, domain_size=40, seed=7
    )
    run_case(snowflake, snowflake_db, k_values=(1, 2))

    print(
        "On the cyclic workload every left-deep order must materialise a large\n"
        "intermediate result, while the hypertree plan keeps each cluster small\n"
        "and prunes with semijoins -- the effect behind Fig. 8 of the paper."
    )


if __name__ == "__main__":
    main()
