#!/usr/bin/env python3
"""Chaos smoke: the serving daemon end to end, under injected faults.

Generates a small workload, stores it, then runs the real thing -- the
``repro db daemon`` CLI in a subprocess -- and throws the fault matrix at
it over its Unix socket:

* a scripted *worker kill* (``REPRO_SERVE_FAULTS``, picked up by the
  daemon's pool from the environment) fires on the first attempt of the
  victim request, forcing a supervised respawn;
* the victim client *hard-disconnects* mid-request (full frame written,
  then ``SO_LINGER`` close), so the daemon must abandon the in-flight
  request and release its admission slice;
* three concurrent healthy clients keep executing throughout -- every
  one of their responses must stay byte-identical to the serial
  in-process oracle;
* a ``health`` probe must report the restart and the abandoned request;
* a ``metrics`` probe must report latency quantiles and the pool's
  counters for the served batch;
* finally SIGTERM: the daemon must drain, exit 0, unlink its socket,
  leave no orphan worker processes, and export its ``--trace-out`` file
  as valid Chrome trace-event JSON carrying admission / queue / attempt
  spans for the traced requests.

CI wraps this in a hard timeout so a hung drain fails the job fast.
Run with::

    python examples/daemon_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.db.daemon import DaemonClient, DaemonDisconnected
from repro.db.database import Database
from repro.db.faults import FAULTS_ENV, FaultPlan
from repro.db.serving import execute_payload, strip_provenance
from repro.obs.export import validate_chrome_trace
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import workload_database

#: Both seams of the fault plan: the daemon's pool kills the worker
#: serving the first admitted request (first attempt only -- the retry
#: must survive), and the client seam hard-disconnects connection 7
#: after writing its first request in full.
DEFAULT_PLAN = [
    {"kind": "worker_exit", "request_index": 0, "attempt": 1},
    {"kind": "client_disconnect", "connection_id": 7, "request_index": 0},
]

VICTIM_CONNECTION_ID = 7


def main() -> None:
    os.environ.setdefault(FAULTS_ENV, json.dumps(DEFAULT_PLAN))
    plan = FaultPlan.from_env()
    print(f"fault plan ({FAULTS_ENV}): {os.environ[FAULTS_ENV]}")

    query = build_query(
        [(f"r{i}", [f"X{i}", f"X{(i + 1) % 5}"]) for i in range(5)],
        output_variables=["X0", "X2"],
        name="cycle5",
    )
    scratch = Path(tempfile.mkdtemp(prefix="repro-daemon-smoke-"))
    store = scratch / "store"
    workload_database(
        query, tuples_per_relation=150, domain_size=12, seed=9
    ).save(store)
    address = f"unix:{scratch / 'daemon.sock'}"
    trace_out = scratch / "trace.json"

    # The real CLI daemon in a subprocess: SIGTERM drain, orphan checks
    # and the environment fault wiring are all exercised for real.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parents[1] / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "db", "daemon", str(store),
            "--address", address, "--workers", "2",
            "--query", "ans(X0,X2) :- r0(X0,X1), r1(X1,X2), r2(X2,X3), "
            "r3(X3,X4), r4(X4,X0).",
            "--max-worker-restarts", "4",
            "--trace-out", str(trace_out),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        ready = daemon.stdout.readline()
        assert "listening" in ready, f"daemon failed to start: {ready!r}"
        print(ready.rstrip())

        # The daemon prewarmed this payload set; the oracle runs locally.
        with DaemonClient(address) as probe:
            payloads = probe.plans()["payloads"]
        assert payloads, "daemon was started with a query set"
        serving_db = Database.open(store)
        oracle = {
            i: execute_payload(p, serving_db) for i, p in enumerate(payloads)
        }

        # Chaos: the victim's first (and only) request triggers both the
        # worker kill and the mid-request disconnect.
        victim = DaemonClient(
            address, connection_id=VICTIM_CONNECTION_ID, fault_plan=plan
        )
        try:
            victim.execute(dict(payloads[0]))
        except DaemonDisconnected as exc:
            print(f"victim: {exc}")
        else:
            raise AssertionError("the scripted disconnect did not fire")
        finally:
            victim.close()

        # Three healthy clients serve concurrently through the chaos.
        failures = []
        def drive(slot: int) -> None:
            try:
                with DaemonClient(address) as client:
                    for i in range(4):
                        payload = dict(payloads[i % len(payloads)])
                        response = client.execute(payload)
                        if strip_provenance(response) != oracle[i % len(payloads)]:
                            failures.append(f"client {slot} request {i} diverged")
            except Exception as exc:  # noqa: BLE001 - smoke must report
                failures.append(f"client {slot}: {exc!r}")

        threads = [
            threading.Thread(target=drive, args=(slot,)) for slot in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures
        print("3 healthy clients x 4 requests: all byte-identical to the oracle")

        # The injected chaos must be visible in the daemon's own health.
        deadline = time.monotonic() + 30.0
        while True:
            with DaemonClient(address) as client:
                health = client.health()
            if (
                health["restarts"] >= 1
                and health["counters"]["abandoned_requests"] >= 1
            ):
                break
            assert time.monotonic() < deadline, (
                f"chaos not reflected in health: {health}"
            )
            time.sleep(0.2)
        worker_pids = health["worker_pids"]
        print(
            f"health: status {health['status']}, "
            f"restarts {health['restarts']}, "
            f"abandoned {health['counters']['abandoned_requests']}, "
            f"dropped {health['counters']['connections_dropped']}, "
            f"queue depth {health['queue_depth']}, "
            f"{health['inflight']} in flight"
        )

        # The metrics request kind: latency quantiles over the batch the
        # healthy clients just served, plus the pool's own counters.
        with DaemonClient(address) as client:
            metrics = client.metrics()
        assert metrics["latency"]["count"] >= 12, metrics["latency"]
        assert metrics["metrics"]["counters"]["requests_admitted"] >= 12
        assert metrics["metrics"]["counters"]["worker_restarts"] >= 1
        print(
            f"metrics: {metrics['latency']['count']} requests, "
            f"p50 {metrics['latency']['p50'] * 1000:.2f}ms, "
            f"p99 {metrics['latency']['p99'] * 1000:.2f}ms, "
            f"{metrics['metrics']['counters']['requests_admitted']} admitted"
        )

        # SIGTERM: drain-then-exit, no orphans, no socket litter.
        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=60)
        assert code == 0, f"daemon exited {code} instead of draining cleanly"
        for pid in worker_pids:
            try:
                os.kill(pid, 0)
            except OSError:
                continue
            raise AssertionError(f"orphan worker process {pid} survived the drain")
        assert not (scratch / "daemon.sock").exists(), "socket file leaked"
        print(daemon.stdout.read().rstrip())

        # The drain must have exported a *valid* Chrome trace: parseable,
        # and carrying the serving-plane spans for the traced requests.
        assert trace_out.exists(), "--trace-out file was not written"
        events = validate_chrome_trace(trace_out.read_text())
        names = {event["name"] for event in events}
        assert {"admission", "queue", "attempt"} <= names, sorted(names)
        print(
            f"trace: {len(events)} events in {trace_out.name} validate as "
            "Chrome trace-event JSON (admission/queue/attempt spans present)"
        )
        print(
            "daemon smoke OK: worker kill supervised, disconnect abandoned, "
            "oracle intact, metrics/trace exported, SIGTERM drained to "
            "exit 0 with no orphans"
        )
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)


if __name__ == "__main__":
    main()
