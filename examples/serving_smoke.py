#!/usr/bin/env python3
"""Smoke test: the process-parallel serving plane end to end.

Generates a small workload, stores it, prewarms the plan cache twice (the
second pass must be pure replay: ``planning_seconds == 0.0`` on every
payload), then serves the warm batch through a 2-worker
:class:`~repro.db.serving.ServingPool` and asserts that

* every worker opened the *identical* store (same catalog content digest)
  and holds **every** column as a read-only ``np.memmap`` view -- shared
  pages, never pickled copies,
* every pooled response -- answers, row order, cardinality and the full
  ``stats`` payload -- is byte-identical to the serial in-process oracle,
  including a budget-aborted request, and
* admission under a one-slice global memory budget degrades to queuing
  (every request still answered, still byte-identical), never to failure.

CI wraps this in a hard timeout so a hung pool fails the job fast.  Run
with::

    python examples/serving_smoke.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.db.database import Database
from repro.db.serving import (
    ServingPool,
    execute_payload,
    prewarm,
    strip_provenance,
)
from repro.db.storage import PlanCache
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import workload_database


def main() -> None:
    query = build_query(
        [(f"r{i}", [f"X{i}", f"X{(i + 1) % 5}"]) for i in range(5)],
        output_variables=["X0", "X2"],
        name="cycle5",
    )
    scratch = Path(tempfile.mkdtemp(prefix="repro-serving-smoke-"))
    store = scratch / "store"
    workload_database(
        query, tuples_per_relation=150, domain_size=12, seed=9
    ).save(store)

    serving_db = Database.open(store)
    cache = PlanCache(scratch / "plans")
    cold = prewarm(serving_db, [query], k_values=(2, 3), plan_cache=cache)
    warm = prewarm(serving_db, [query], k_values=(2, 3), plan_cache=cache)
    assert all(p["planning_seconds"] == 0.0 for p in warm), (
        "second prewarm must replay the plan cache without planning"
    )
    print(
        f"prewarm: cold {sum(p['planning_seconds'] for p in cold):.4f}s, "
        "warm 0.0000s (pure plan replay)"
    )

    batch = warm * 4
    aborting = dict(warm[0], budget=200, threads=1)  # deterministic abort
    batch.append(aborting)
    oracle = [execute_payload(p, serving_db) for p in batch]
    assert oracle[-1]["status"] == "budget_exceeded"

    with ServingPool(store, workers=2) as pool:
        for worker_id, report in sorted(pool.worker_reports.items()):
            assert report["mmap_columns"] == report["total_columns"], (
                "workers must mmap-share the store, not pickle columns"
            )
            print(
                f"worker {worker_id}: pid {report['pid']}, "
                f"{report['mmap_columns']}/{report['total_columns']} columns "
                f"mmap-shared, digest {report['store_digest'][:12]}..."
            )
        digests = {r["store_digest"] for r in pool.worker_reports.values()}
        assert len(digests) == 1, "workers must open the identical store"
        responses = pool.run(batch)
    assert [strip_provenance(r) for r in responses] == oracle, (
        "pooled responses must be byte-identical to the serial oracle"
    )
    print(
        f"{len(batch)} pooled responses byte-identical to the serial oracle "
        f"(answers, row order, stats; incl. a budget abort at "
        f"work_so_far={oracle[-1]['work_so_far']})"
    )

    slice_bytes = 1 << 18
    bounded = [dict(p, memory_budget_bytes=slice_bytes) for p in warm * 4]
    bounded_oracle = [execute_payload(p, serving_db) for p in bounded]
    with ServingPool(
        store,
        workers=2,
        global_memory_budget_bytes=slice_bytes,
        default_memory_budget_bytes=slice_bytes,
    ) as pool:
        assert [strip_provenance(r) for r in pool.run(bounded)] == bounded_oracle, (
            "budget-admitted responses must match the serial oracle"
        )
    print(
        f"{len(bounded)} requests served through a one-slice global budget "
        f"({slice_bytes:,}B): queued, never failed, still byte-identical"
    )
    print("serving smoke test passed")


if __name__ == "__main__":
    main()
