#!/usr/bin/env python3
"""Quickstart: decompose a conjunctive query and weigh the decomposition.

This walks through the core objects of the library on the paper's
introductory example Q0 (Section 1, Fig. 1):

1. write a conjunctive query in datalog syntax and build its hypergraph;
2. compute its hypertree width and a minimum-width normal-form decomposition
   (k-decomp);
3. attach weighting functions (the lexicographic TAF of Example 3.1) and use
   minimal-k-decomp to find the minimum-weight decomposition;
4. decide a weight threshold with threshold-k-decomp.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    hypertree_width,
    is_acyclic,
    k_decomp,
    minimal_k_decomp,
    minimum_weight,
    parse_query,
    threshold_k_decomp,
    width_taf,
)
from repro.weights import lexicographic_taf


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A conjunctive query and its hypergraph (the paper's Q0).
    # ------------------------------------------------------------------
    query = parse_query(
        "ans <- s1(A,B,D), s2(B,C,D), s3(B,E), s4(D,G), "
        "s5(E,F,G), s6(E,H), s7(F,I), s8(G,J)",
        name="Q0",
    )
    hypergraph = query.hypergraph()
    print(query.describe())
    print()
    print(hypergraph.describe())
    print()
    print(f"α-acyclic?           {is_acyclic(hypergraph)}")
    print(f"hypertree width:     {hypertree_width(hypergraph)}")
    print()

    # ------------------------------------------------------------------
    # 2. A minimum-width normal-form decomposition (unweighted).
    # ------------------------------------------------------------------
    decomposition = k_decomp(hypergraph, 2)
    print("A width-2 normal-form hypertree decomposition (k-decomp):")
    print(decomposition.describe())
    print()

    # ------------------------------------------------------------------
    # 3. Weighted decompositions: the lexicographic TAF of Example 3.1.
    # ------------------------------------------------------------------
    lex = lexicographic_taf(hypergraph)
    minimal = minimal_k_decomp(hypergraph, 2, lex)
    print(
        "Lexicographically minimal decomposition "
        f"(ω^lex = {lex.weigh(minimal):.0f}, histogram {minimal.width_histogram()}):"
    )
    print(minimal.describe())
    print()
    print(f"width TAF minimum over kNFD (k=2): {minimum_weight(hypergraph, 2, width_taf()):.0f}")

    # ------------------------------------------------------------------
    # 4. The threshold decision problem (Theorem 5.1's problem).
    # ------------------------------------------------------------------
    best = lex.weigh(minimal)
    print(
        f"∃ NF decomposition with ω^lex ≤ {best:.0f}?  "
        f"{threshold_k_decomp(hypergraph, 2, lex, best)}"
    )
    print(
        f"∃ NF decomposition with ω^lex ≤ {best - 1:.0f}?  "
        f"{threshold_k_decomp(hypergraph, 2, lex, best - 1)}"
    )


if __name__ == "__main__":
    main()
