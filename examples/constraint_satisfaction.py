#!/usr/bin/env python3
"""Constraint satisfaction via weighted hypertree decompositions.

Conjunctive-query evaluation and constraint satisfaction are the same problem
(Section 1.1 of the paper): variables are CSP variables, atoms are
constraints, and the relations attached to the atoms are the constraint
tables.  A bounded-width hypertree decomposition therefore solves the CSP in
polynomial time, and a *weighted* decomposition picks the cheapest way to do
so when the constraint tables have very different sizes.

This example solves graph 3-colouring instances (the classical CSP) by:

1. encoding the graph as a Boolean conjunctive query with one ``edge``
   constraint per graph edge;
2. attaching the "different colours" constraint table to every atom;
3. computing a cost-minimal hypertree decomposition of the constraint
   hypergraph with cost-k-decomp;
4. running the resulting plan with Yannakakis' algorithm to decide
   satisfiability.

Run with::

    python examples/constraint_satisfaction.py
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Sequence, Tuple

from repro.db.database import Database
from repro.db.relation import Relation
from repro.decomposition.kdecomp import hypertree_width
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.conjunctive import ConjunctiveQuery, build_query


def coloring_csp(
    vertices: Sequence[str], edges: Sequence[Tuple[str, str]], num_colors: int = 3
) -> Tuple[ConjunctiveQuery, Database]:
    """Encode graph colouring as a Boolean conjunctive query + database."""
    body = [("edge", [u, v]) for u, v in edges]
    query = build_query(body, name="coloring")
    different = [
        (a, b) for a, b in permutations(range(num_colors), 2)
    ]
    database = Database(
        relations={"edge": Relation("edge", ["c1", "c2"], different)},
        name=f"{num_colors}-coloring",
    )
    database.analyze()
    return query, database


def solve(vertices: Sequence[str], edges: Sequence[Tuple[str, str]], label: str) -> None:
    query, database = coloring_csp(vertices, edges)
    width = hypertree_width(query.hypergraph())
    k = max(width, 2)
    plan = cost_k_decomp(query, database.statistics, k)
    result = plan.execute(database)
    print(f"{label}:")
    print(f"  constraints={len(edges)}  variables={len(vertices)}  hypertree width={width}")
    print(f"  plan width={plan.width}  estimated cost={plan.estimated_cost:,.0f}")
    print(f"  3-colourable? {result.boolean}")
    print()


def main() -> None:
    # A 5-cycle: 3-colourable.
    cycle_vertices = [f"V{i}" for i in range(5)]
    cycle_edges = [(f"V{i}", f"V{(i + 1) % 5}") for i in range(5)]
    solve(cycle_vertices, cycle_edges, "5-cycle")

    # The Petersen graph: 3-colourable.
    outer = [(f"O{i}", f"O{(i + 1) % 5}") for i in range(5)]
    inner = [(f"I{i}", f"I{(i + 2) % 5}") for i in range(5)]
    spokes = [(f"O{i}", f"I{i}") for i in range(5)]
    petersen_vertices = [f"O{i}" for i in range(5)] + [f"I{i}" for i in range(5)]
    solve(petersen_vertices, outer + inner + spokes, "Petersen graph")

    # K4: not 3-colourable.
    k4_vertices = ["A", "B", "C", "D"]
    k4_edges = [
        ("A", "B"), ("A", "C"), ("A", "D"), ("B", "C"), ("B", "D"), ("C", "D"),
    ]
    solve(k4_vertices, k4_edges, "K4 (complete graph on 4 vertices)")


if __name__ == "__main__":
    main()
