#!/usr/bin/env python3
"""Smoke test: the serving plane's fault tolerance end to end.

Generates a small workload, stores it, then serves a warm batch through a
2-worker :class:`~repro.db.serving.ServingPool` while a scripted
:class:`~repro.db.faults.FaultPlan` kills one worker mid-request (CI sets
``REPRO_SERVE_FAULTS`` to the plan; running this file directly installs
the same plan itself).  Asserts that

* the supervisor respawned the dead worker (``pool.restarts >= 1``) and
  re-dispatched the crash-lost request,
* every pooled response -- including the one whose first attempt died
  with the worker -- is byte-identical to the serial in-process oracle
  once the scheduling-dependent ``"serving"`` provenance block is
  stripped, and
* the retried request reports more than one attempt in that block.

CI wraps this in a hard timeout so a hung supervisor fails the job fast.
Run with::

    python examples/serving_faults_smoke.py
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.db.database import Database
from repro.db.faults import FAULTS_ENV
from repro.db.serving import (
    ServingPool,
    execute_payload,
    prewarm,
    strip_provenance,
)
from repro.db.storage import PlanCache
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import workload_database

#: The scripted fault when the environment does not bring its own: the
#: worker holding request 2 exits mid-request (any worker slot, first
#: attempt only -- the retry must survive).
DEFAULT_PLAN = [{"kind": "worker_exit", "request_index": 2}]


def main() -> None:
    os.environ.setdefault(FAULTS_ENV, json.dumps(DEFAULT_PLAN))
    plan = json.loads(os.environ[FAULTS_ENV]) if os.environ[
        FAULTS_ENV
    ].lstrip().startswith(("[", "{")) else os.environ[FAULTS_ENV]
    print(f"fault plan ({FAULTS_ENV}): {plan}")

    query = build_query(
        [(f"r{i}", [f"X{i}", f"X{(i + 1) % 5}"]) for i in range(5)],
        output_variables=["X0", "X2"],
        name="cycle5",
    )
    scratch = Path(tempfile.mkdtemp(prefix="repro-serving-faults-"))
    store = scratch / "store"
    workload_database(
        query, tuples_per_relation=150, domain_size=12, seed=9
    ).save(store)

    serving_db = Database.open(store)
    cache = PlanCache(scratch / "plans")
    prewarm(serving_db, [query], k_values=(2, 3), plan_cache=cache)
    [payload] = prewarm(serving_db, [query], k_values=(2, 3), plan_cache=cache)
    batch = [dict(payload) for _ in range(6)]
    oracle = [execute_payload(p, serving_db) for p in batch]

    # fault_plan is NOT passed explicitly: the pool must pick the plan up
    # from the environment -- the wiring CI scripts.
    with ServingPool(store, workers=2, max_worker_restarts=4) as pool:
        responses = pool.run(batch)
        restarts = pool.restarts
    assert [strip_provenance(r) for r in responses] == oracle, (
        "responses under an injected worker crash must stay byte-identical "
        "to the serial oracle"
    )
    assert restarts >= 1, (
        f"the supervisor must have restarted the killed worker "
        f"(restarts={restarts})"
    )
    attempts = [r["serving"]["attempts"] for r in responses]
    assert any(a > 1 for a in attempts), (
        f"the crash-lost request must have been retried (attempts={attempts})"
    )
    print(
        f"{len(batch)} responses byte-identical to the serial oracle under "
        f"an injected mid-request worker kill; restarts={restarts}, "
        f"attempts per request={attempts}"
    )
    print("serving fault-injection smoke test passed")


if __name__ == "__main__":
    main()
