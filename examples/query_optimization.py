#!/usr/bin/env python3
"""Query optimisation with cost-k-decomp (Section 6 of the paper).

Reproduces the paper's running example end to end:

1. the query Q1 and the published ``ANALYZE TABLE`` statistics of Fig. 5;
2. cost-k-decomp plans for k = 2..5 with their estimated costs (the ``$``
   labels of Figs. 6 and 7) -- the cost decreases with k and plateaus at the
   optimum;
3. a synthetic database realising the same statistics profile, on which both
   the structural plan and the quantitative-only left-deep baseline are
   executed and compared.

Run with::

    python examples/query_optimization.py
"""

from __future__ import annotations

from repro.planner.baseline import baseline_plan
from repro.planner.compare import compare_planners
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.examples import q1
from repro.workloads.paper_queries import (
    PAPER_Q1_ESTIMATED_COSTS,
    fig5_statistics,
    fig8_database,
)


def main() -> None:
    query = q1()
    statistics = fig5_statistics()

    print(query.describe())
    print()
    print("Fig. 5 statistics (cardinality and per-attribute selectivity):")
    print(statistics.describe())
    print()

    # ------------------------------------------------------------------
    # Planning from statistics alone (no data needed), k = 2..5.
    # ------------------------------------------------------------------
    print("cost-k-decomp estimated plan costs (our cost model vs the paper's):")
    for k in (2, 3, 4, 5):
        plan = cost_k_decomp(query, statistics, k)
        paper = PAPER_Q1_ESTIMATED_COSTS[k]
        print(
            f"  k={k}: width={plan.width}  estimated cost={plan.estimated_cost:>14,.0f}"
            f"   (paper: {paper:>9,})   planning {plan.planning_seconds:.2f}s"
        )
    print()

    best_plan = cost_k_decomp(query, statistics, 3)
    print("The k=3 plan (per-node $ estimates as in Figs. 6/7):")
    print(best_plan.describe())
    print()

    baseline = baseline_plan(query, statistics)
    print("The quantitative-only baseline (best left-deep join order):")
    print(baseline.describe())
    print()

    # ------------------------------------------------------------------
    # Execute both over a synthetic database with the same density regime.
    # ------------------------------------------------------------------
    print("Executing both planners over a synthetic 150-tuple-per-relation database...")
    database = fig8_database(query, tuples_per_relation=150, seed=3)
    report = compare_planners(query, database, k_values=(2, 3), budget=4_000_000)
    print(report.describe())


if __name__ == "__main__":
    main()
