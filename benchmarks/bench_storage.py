"""Storage-plane benchmarks: cold generation vs warm mmap open vs plan cache.

Two interleaved measurement groups, recorded as separate rows in
``BENCH_core.json`` (print them alone with
``python benchmarks/bench_delta.py --bench benchmarks/bench_storage.py``):

* ``test_cold_generate_vs_warm_open`` -- the full Fig. 5 profile
  (``scale=1.0``, the paper's published cardinalities, ~31k tuples over 9
  relations).  ``cold_generate`` is generation plus dictionary interning,
  exactly what every experiment sweep used to pay; ``warm_open`` reopens
  the saved directory, i.e. a JSON catalog read plus one ``np.memmap``
  per column.  The warm open must be at least 5x faster (asserted -- the
  observed margin is ~20x), and both databases must behave
  byte-identically: same decoded rows and, running the Q1 structural plan
  under a tight evaluation budget, the *exact same* budget-abort point
  (the columnar join computes its would-be emit count before
  materialising, so ``work_so_far`` at the abort is a precise engine
  fingerprint at a fraction of a full run's cost).
* ``test_plan_cache_cold_vs_warm`` -- a Q1 k-sweep through
  ``compare_planners`` with a persistent :class:`PlanCache` (on the
  scaled Fig. 5 database the other benches use): the cold run plans and
  stores, the warm run replays every winning plan and must report
  ``planning_seconds == 0.0`` for baseline and every ``k`` (the cache
  hit skips planning entirely).
* ``test_packed_vs_raw_store`` -- the same full-scale Fig. 5 database
  saved under ``encoding="packed"`` and ``encoding="raw"``: bytes on
  disk (the packed store must be at least 4x smaller), warm-open time,
  and the Q1 budget-abort execution fingerprint plus its wall time on
  each store (identical abort point: the packed kernels are
  byte-equivalent to the int64 oracle).
* ``test_budgeted_execution_below_raw_footprint`` -- the scaled Fig. 5
  Q1 structural plan run to completion under a ``memory_budget_bytes``
  an order of magnitude *smaller than the raw int64 column footprint*
  (``CatalogStatistics.estimated_raw_bytes``): adaptive morsels bound
  the transients, and the answer, row order and work counters stay
  byte-identical to the unbudgeted run.
"""

import atexit
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from repro.db.algebra import EvaluationBudgetExceeded
from repro.db.generator import database_from_statistics
from repro.db.storage import PlanCache, open_database, save_database, storage_info
from repro.planner.compare import compare_planners
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.examples import q1
from repro.workloads.paper_queries import fig5_database, fig5_statistics

_SCRATCH = Path(tempfile.mkdtemp(prefix="repro-bench-storage-"))
atexit.register(shutil.rmtree, _SCRATCH, ignore_errors=True)
_STATE = {}
_BUCKETS = {}

OPEN_MODES = ("cold_generate", "warm_open")
PLAN_MODES = ("plan_cold", "plan_warm")
ENCODING_MODES = ("packed", "raw")

#: Tight budget for the abort-point fingerprint: reached long before the
#: ~51M-tuple full evaluation, but only after every relation has been
#: scanned and several joins have probed.
_ABORT_BUDGET = 2_000_000


def _generate_full_scale():
    return database_from_statistics(
        q1(), fig5_statistics(), seed=0, scale=1.0, columnar=True
    )


def _fig5_stored():
    """One cold-generated, saved copy of the full-scale Fig. 5 database
    plus the Q1 k=3 plan (untimed shared setup).  Saved packed -- this
    store doubles as the packed side of the encoding comparison."""
    if "fig5" not in _STATE:
        database = _generate_full_scale()
        save_database(database, _SCRATCH / "fig5-packed", encoding="packed")
        plan = cost_k_decomp(q1(), database.statistics, 3, completion="fresh")
        _STATE["fig5"] = (database, plan)
    return _STATE["fig5"]


def _fig5_store_for(encoding: str) -> Path:
    """The full-scale Fig. 5 store under one encoding (saved lazily)."""
    database, _ = _fig5_stored()
    target = _SCRATCH / f"fig5-{encoding}"
    if not (target / "catalog.json").exists():
        save_database(database, target, encoding=encoding)
    return target


def _execution_fingerprint(plan, database):
    """``work_so_far`` at the budget abort -- byte-identical engines abort
    at the identical point with the identical counter."""
    try:
        plan.execute(database, budget=_ABORT_BUDGET)
    except EvaluationBudgetExceeded as exc:
        return exc.work_so_far
    return -1  # full completion (would mean the budget was set too high)


@pytest.mark.parametrize("mode", OPEN_MODES)
def test_cold_generate_vs_warm_open(benchmark, mode, request):
    """Fig. 5 profile at scale 1.0: generation+interning vs mmap reopen."""
    _, plan = _fig5_stored()

    if mode == "cold_generate":
        action = _generate_full_scale
    else:
        action = lambda: open_database(_SCRATCH / "fig5-packed")

    started = time.perf_counter()
    database = benchmark.pedantic(action, rounds=1, iterations=1)
    open_seconds = time.perf_counter() - started

    seen = _BUCKETS.setdefault("open", {})
    seen[mode] = {
        "seconds": open_seconds,
        "rows": {
            name: database.relation(name).rows
            for name in database.relation_names()
        },
        "statistics": database.statistics.to_payload(),
        "abort_work": _execution_fingerprint(plan, database),
    }
    if len(seen) == len(OPEN_MODES):
        cold, warm = seen["cold_generate"], seen["warm_open"]
        assert cold["rows"] == warm["rows"], (
            "a reopened database must decode to identical rows in order"
        )
        assert cold["statistics"] == warm["statistics"]
        assert cold["abort_work"] == warm["abort_work"], (
            "both databases must reach the identical budget-abort point"
        )
        assert cold["seconds"] >= 5 * warm["seconds"], (
            f"warm open should be at least 5x faster than cold generation "
            f"({cold['seconds']:.4f}s vs {warm['seconds']:.4f}s)"
        )
    request.node._bench_extra = {
        "mode": mode,
        "open_seconds": round(open_seconds, 6),
        "total_tuples": database.total_tuples(),
    }


@pytest.mark.parametrize("mode", PLAN_MODES)
def test_plan_cache_cold_vs_warm(benchmark, mode, request):
    """Scaled Fig. 5 Q1 k-sweep with a persistent plan cache: plan+store,
    then replay with zero planning time."""
    if "plan_db" not in _STATE:
        _STATE["plan_db"] = fig5_database(seed=0, scale=0.2, columnar=True)
    database = _STATE["plan_db"]
    cache = _STATE.setdefault("plan_cache", PlanCache(_SCRATCH / "plans"))
    query = q1()

    started = time.perf_counter()
    report = benchmark.pedantic(
        lambda: compare_planners(
            query,
            database,
            k_values=(2, 3),
            budget=20_000_000,
            plan_cache=cache,
        ),
        rounds=1,
        iterations=1,
    )
    sweep_seconds = time.perf_counter() - started

    planning_seconds = report.baseline.planning_seconds + sum(
        m.planning_seconds for m in report.structural.values()
    )
    seen = _BUCKETS.setdefault("plan", {})
    seen[mode] = {
        "work": {k: m.evaluation_work for k, m in report.structural.items()},
        "planning_seconds": planning_seconds,
    }
    if mode == "plan_warm":
        assert report.baseline.planning_seconds == 0.0
        for k, measurement in report.structural.items():
            assert measurement.planning_seconds == 0.0, (
                f"plan-cache hit must skip planning entirely (k={k})"
            )
    if len(seen) == len(PLAN_MODES):
        assert seen["plan_cold"]["work"] == seen["plan_warm"]["work"], (
            "replayed plans must do identical evaluation work"
        )
        assert (
            seen["plan_warm"]["planning_seconds"]
            < seen["plan_cold"]["planning_seconds"]
        )
    request.node._bench_extra = {
        "mode": mode,
        "sweep_seconds": round(sweep_seconds, 6),
        "planning_seconds": round(planning_seconds, 6),
        "cache": cache.stats(),
    }


@pytest.mark.parametrize("mode", ENCODING_MODES)
def test_packed_vs_raw_store(benchmark, mode, request):
    """Full-scale Fig. 5 under both encodings: store bytes, warm open,
    and the Q1 budget-abort join time -- interleaved packed-vs-raw rows."""
    _, plan = _fig5_stored()
    target = _fig5_store_for(mode)
    info = storage_info(target)

    started = time.perf_counter()
    database = benchmark.pedantic(
        lambda: open_database(target), rounds=1, iterations=1
    )
    open_seconds = time.perf_counter() - started

    join_started = time.perf_counter()
    abort_work = _execution_fingerprint(plan, database)
    join_seconds = time.perf_counter() - join_started

    seen = _BUCKETS.setdefault("encoding", {})
    seen[mode] = {
        "bytes": info["total_column_bytes"],
        "ratio": info["compression_ratio"],
        "abort_work": abort_work,
    }
    if len(seen) == len(ENCODING_MODES):
        packed, raw = seen["packed"], seen["raw"]
        assert packed["abort_work"] == raw["abort_work"], (
            "packed kernels must reach the identical budget-abort point"
        )
        assert raw["bytes"] >= 4 * packed["bytes"], (
            f"the packed Fig. 5 store should be at least 4x smaller "
            f"({packed['bytes']:,}B packed vs {raw['bytes']:,}B raw)"
        )
        assert packed["ratio"] >= 4.0
    request.node._bench_extra = {
        "mode": mode,
        "store_bytes": info["total_column_bytes"],
        "compression_ratio": round(info["compression_ratio"], 3),
        "open_seconds": round(open_seconds, 6),
        "q1_join_seconds": round(join_seconds, 6),
        "abort_work": abort_work,
    }


def test_budgeted_execution_below_raw_footprint(benchmark, request):
    """Scaled Fig. 5 Q1 runs to completion under a memory budget an order
    of magnitude smaller than the raw int64 column footprint, with the
    answer and every work counter byte-identical to the unbudgeted run."""
    if "plan_db" not in _STATE:
        _STATE["plan_db"] = fig5_database(seed=0, scale=0.2, columnar=True)
    database = _STATE["plan_db"]
    raw_footprint = database.statistics.estimated_raw_bytes()
    budget_bytes = raw_footprint // 8
    assert budget_bytes < raw_footprint
    plan = cost_k_decomp(q1(), database.statistics, 3, completion="fresh")
    oracle = plan.execute(database)

    started = time.perf_counter()
    bounded = benchmark.pedantic(
        lambda: plan.execute(database, memory_budget_bytes=budget_bytes),
        rounds=1,
        iterations=1,
    )
    bounded_seconds = time.perf_counter() - started

    assert bounded.cardinality == oracle.cardinality
    assert bounded.boolean == oracle.boolean
    if oracle.relation is not None:
        assert bounded.relation.rows == oracle.relation.rows
    assert bounded.stats.snapshot() == oracle.stats.snapshot()
    assert (
        bounded.stats.peak_transient_elements
        <= oracle.stats.peak_transient_elements
    )
    if oracle.stats.peak_transient_elements > budget_bytes // 8:
        # The unbudgeted transients would not have fit: the adaptive
        # morsels must actually have shrunk them.
        assert (
            bounded.stats.peak_transient_elements
            < oracle.stats.peak_transient_elements
        )
    request.node._bench_extra = {
        "raw_footprint_bytes": raw_footprint,
        "memory_budget_bytes": budget_bytes,
        "peak_transient_elements": bounded.stats.peak_transient_elements,
        "unbudgeted_peak_transient_elements": (
            oracle.stats.peak_transient_elements
        ),
        "bounded_seconds": round(bounded_seconds, 6),
        "evaluation_work": bounded.stats.total_work,
    }
