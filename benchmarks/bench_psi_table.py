"""Section 4.2 -- the Ψ vs n^k comparison after Theorem 4.5.

Regenerates: Ψ(n=5, k=3) = 25 (vs n^k = 125) and Ψ(n=10, k=4) = 385
(vs 10 000).  Shape asserted: both of the paper's numbers match exactly, and
the enumeration-based count agrees with the closed form on Q0's hypergraph.
"""

from conftest import emit

from repro.decomposition.candidates import count_k_vertices, k_vertices
from repro.experiments.tables import psi_table_experiment
from repro.hypergraph.generators import paper_q0_hypergraph


def test_psi_table(benchmark):
    result = benchmark.pedantic(psi_table_experiment, rounds=1, iterations=1)
    emit(result)
    assert all(row["matches_paper"] for row in result.rows)


def test_psi_enumeration_consistency(benchmark):
    hypergraph = paper_q0_hypergraph()

    def enumerate_k3():
        return len(k_vertices(hypergraph, 3))

    count = benchmark(enumerate_k3)
    assert count == count_k_vertices(hypergraph.num_edges(), 3)
