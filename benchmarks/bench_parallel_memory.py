"""Parallel / memory-bounded execution-plane benchmarks.

Two interleaved measurement pairs, extending the engine trajectory of
``bench_execution_engine.py`` to the PR-4 knobs:

* ``test_yannakakis_memory_budget`` -- the fig5-scale Q1 Yannakakis
  execution, unbounded vs a 256 KiB per-kernel memory budget.  The work
  counters must be byte-identical (chunking only resizes transient index
  arrays); recorded per mode are the wall seconds, the largest transient
  kernel batch (``OperatorStats.peak_transient_elements``) and the process
  peak RSS.  The bounded run must cap the peak transient batch at least
  4x below the unbounded one -- that is deterministic accounting, so it is
  asserted, while seconds are recorded for eyeballs only.
* ``test_parallel_snowflake_threads`` -- a multi-subtree data-warehouse
  snowflake query executed with 1 vs 4 threads.  Answers and counters must
  be identical; the seconds land in ``BENCH_core.json`` so multi-core CI
  runs show the wall-clock effect of per-subtree parallelism (on a
  single-core host the two rows simply coincide).
"""

import resource
import time

import pytest

from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.examples import q1
from repro.workloads.paper_queries import fig5_database
from repro.workloads.synthetic import snowflake_query, workload_database

#: Cached plans (planning is identical across modes and excluded from the
#: timed region) and cross-mode measurement buckets.
_PLANS = {}
_BUCKETS = {}

MEMORY_MODES = ("unbounded", "budget256k")
MEMORY_BUDGETS = {"unbounded": None, "budget256k": 256 * 1024}
THREAD_MODES = (1, 4)


def _peak_rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _q1_fig5_plan(k: int, scale: float):
    key = ("q1", k, scale)
    if key not in _PLANS:
        statistics = fig5_database(seed=0, scale=scale, columnar=True).statistics
        _PLANS[key] = cost_k_decomp(q1(), statistics, k, completion="fresh")
    return _PLANS[key]


def _snowflake_case():
    key = "snowflake"
    if key not in _PLANS:
        query = snowflake_query(4, 3, name="dw_snowflake")
        database = workload_database(
            query, tuples_per_relation=20_000, domain_size=400, seed=7
        )
        plan = cost_k_decomp(query, database.statistics, 2, completion="fresh")
        # One untimed warm-up run so neither thread mode pays the one-off
        # binding/decode caches in its timed region.
        plan.to_ir().execute(database, budget=50_000_000)
        _PLANS[key] = (query, database, plan)
    return _PLANS[key]


def _record_cross_mode(bucket: str, mode, snapshot) -> None:
    seen = _BUCKETS.setdefault(bucket, {})
    seen[mode] = snapshot
    return seen


@pytest.mark.parametrize("mode", MEMORY_MODES)
def test_yannakakis_memory_budget(benchmark, mode, request):
    """Fig5-scale Q1 Yannakakis: unbounded vs 256 KiB kernel budget."""
    scale = 0.2
    plan = _q1_fig5_plan(k=3, scale=scale)
    database = fig5_database(seed=0, scale=scale, columnar=True)
    plan_ir = plan.to_ir()
    memory_budget = MEMORY_BUDGETS[mode]

    started = time.perf_counter()
    result = benchmark.pedantic(
        lambda: plan_ir.execute(
            database, budget=50_000_000, memory_budget_bytes=memory_budget
        ),
        rounds=1,
        iterations=1,
    )
    evaluation_seconds = time.perf_counter() - started

    assert result.boolean is True
    peak_transient = result.stats.peak_transient_elements
    seen = _record_cross_mode(
        "yannakakis_memory_budget",
        mode,
        {"snapshot": result.stats.snapshot(), "peak": peak_transient},
    )
    if len(seen) == len(MEMORY_MODES):
        unbounded, bounded = seen["unbounded"], seen["budget256k"]
        assert unbounded["snapshot"] == bounded["snapshot"], (
            "chunking must not change the work counters"
        )
        assert bounded["peak"] * 4 <= unbounded["peak"], (
            f"memory budget should cap peak transient allocation >=4x below "
            f"unbounded (got {unbounded['peak']:,} -> {bounded['peak']:,})"
        )
    request.node._bench_extra = {
        "mode": mode,
        "evaluation_seconds": round(evaluation_seconds, 6),
        "evaluation_work": result.stats.total_work,
        "peak_transient_elements": peak_transient,
        "peak_rss_kb": _peak_rss_kb(),
    }


@pytest.mark.parametrize("threads", THREAD_MODES)
def test_parallel_snowflake_threads(benchmark, threads, request):
    """Multi-subtree snowflake execution, serial vs 4 worker threads."""
    query, database, plan = _snowflake_case()
    plan_ir = plan.to_ir()

    started = time.perf_counter()
    result = benchmark.pedantic(
        lambda: plan_ir.execute(database, budget=50_000_000, threads=threads),
        rounds=1,
        iterations=1,
    )
    evaluation_seconds = time.perf_counter() - started

    assert result.boolean is True
    seen = _record_cross_mode(
        "parallel_snowflake", threads, result.stats.snapshot()
    )
    if len(seen) == len(THREAD_MODES):
        assert seen[1] == seen[4], "thread count must not change the counters"
    request.node._bench_extra = {
        "threads": threads,
        "evaluation_seconds": round(evaluation_seconds, 6),
        "evaluation_work": result.stats.total_work,
        "peak_rss_kb": _peak_rss_kb(),
    }
