"""Scalability -- minimal-k-decomp planning cost as queries grow.

The practical counterpart of the Theorem 4.5 complexity bound: planning time
is polynomial in the number of atoms (through Ψ) and grows steeply with k.
This extension benchmark measures minimal-k-decomp on growing chain and
cycle queries and on Q1 for k = 2..4.

Shape asserted: every produced decomposition respects the width bound, and
planning Q1 at k = 4 costs more than at k = 2 (the overhead the paper charges
against large k in Fig. 8(A)).
"""

import time

from conftest import emit

from repro.experiments.ablation import scalability_experiment
from repro.experiments.runner import ExperimentResult
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.examples import q1
from repro.workloads.paper_queries import fig5_statistics


def test_scalability_chains_and_cycles(benchmark):
    result = benchmark.pedantic(
        lambda: scalability_experiment(sizes=(4, 6, 8, 10, 12), k=2),
        rounds=1,
        iterations=1,
    )
    emit(result)
    assert all(row["width"] <= 2 for row in result.rows)
    chains = [row for row in result.rows if row["family"] == "chain"]
    assert all(row["width"] == 1 for row in chains)


def test_planning_overhead_grows_with_k(benchmark):
    statistics = fig5_statistics()

    def sweep():
        result = ExperimentResult(
            name="Planning overhead -- Q1, cost-k-decomp",
            description="Wall-clock planning time per width bound.",
        )
        for k in (2, 3, 4):
            started = time.perf_counter()
            plan = cost_k_decomp(q1(), statistics, k)
            result.add_row(k=k, width=plan.width, seconds=time.perf_counter() - started)
        return result

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(result)
    seconds = result.column("seconds")
    assert seconds[-1] > seconds[0]
