"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see the
per-experiment index in DESIGN.md), asserts the *shape* the paper reports,
and prints the regenerated rows so that running::

    pytest benchmarks/bench_*.py --benchmark-only -s

shows the tables next to pytest-benchmark's timing output.

Every *passing* benchmark test additionally contributes a
``{bench, params, seconds}`` row to ``BENCH_core.json`` at the repository
root (see :func:`bench_core_log`), so successive PRs accumulate a perf
trajectory that can be diffed.  Rows are buffered in memory and written once
per pytest session, tagged with the session's timestamp and commit, so
repeated local runs stay distinguishable and failed/aborted tests leave no
rows.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_LOG_PATH = REPO_ROOT / "BENCH_core.json"

#: Rows collected during this pytest session, flushed at sessionfinish.
_SESSION_ROWS: list = []


def emit(result) -> None:
    """Print an ExperimentResult table (visible with ``-s`` or on failure)."""
    print()
    print(result.to_table())


def _json_safe(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def _current_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=5,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    # Expose the call-phase outcome to fixtures (standard pytest pattern),
    # so only passing tests are recorded.
    outcome = yield
    report = outcome.get_result()
    if report.when == "call":
        item._bench_call_passed = report.passed


@pytest.fixture(autouse=True)
def bench_core_log(request):
    """Time every benchmark test and buffer a row for ``BENCH_core.json``.

    This measures the whole test body (setup work included), which is the
    number a future PR can compare against without re-deriving
    pytest-benchmark's calibration; the pytest-benchmark output remains the
    precision instrument.
    """
    started = time.perf_counter()
    yield
    seconds = time.perf_counter() - started
    if not getattr(request.node, "_bench_call_passed", False):
        return
    callspec = getattr(request.node, "callspec", None)
    params = (
        {key: _json_safe(value) for key, value in callspec.params.items()}
        if callspec is not None
        else {}
    )
    row = {
        "bench": request.node.nodeid,
        "params": params,
        "seconds": round(seconds, 6),
    }
    # Benchmarks may attach structured measurements (e.g. the execution
    # benches record evaluation work and seconds per engine) by setting
    # ``request.node._bench_extra`` to a JSON-safe mapping.
    extra = getattr(request.node, "_bench_extra", None)
    if extra:
        row["extra"] = {key: _json_safe(value) for key, value in extra.items()}
    _SESSION_ROWS.append(row)


def pytest_sessionfinish(session, exitstatus):
    """Append this session's rows to the repo-root ``BENCH_core.json``.

    The file holds a flat JSON list of rows in append order, each tagged
    with the session's run id (UTC timestamp + commit); corrupt or missing
    files start a fresh list rather than failing the benchmark run.
    """
    if not _SESSION_ROWS:
        return
    try:
        rows = json.loads(BENCH_LOG_PATH.read_text())
        if not isinstance(rows, list):
            rows = []
    except (OSError, ValueError):
        rows = []
    run_id = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": _current_commit(),
    }
    for row in _SESSION_ROWS:
        rows.append({**row, "run": run_id})
    BENCH_LOG_PATH.write_text(json.dumps(rows, indent=1) + "\n")
    _SESSION_ROWS.clear()
