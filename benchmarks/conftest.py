"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see the
per-experiment index in DESIGN.md), asserts the *shape* the paper reports,
and prints the regenerated rows so that running::

    pytest benchmarks/ --benchmark-only -s

shows the tables next to pytest-benchmark's timing output.
"""

from __future__ import annotations

import pytest


def emit(result) -> None:
    """Print an ExperimentResult table (visible with ``-s`` or on failure)."""
    print()
    print(result.to_table())
