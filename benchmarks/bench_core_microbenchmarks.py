"""Micro-benchmarks of the core algorithmic building blocks.

Not tied to a specific figure; these time the pieces whose costs appear in
the Theorem 4.5 analysis (building the candidates graph, evaluating it for a
TAF, extracting the minimal hypertree) and the relational substrate
(Yannakakis evaluation of a hypertree plan), so regressions in any layer are
visible.
"""

from repro.db.executor import execute_hypertree_plan
from repro.db.generator import uniform_database
from repro.decomposition.candidates import CandidatesGraph
from repro.decomposition.kdecomp import optimal_decomposition
from repro.decomposition.minimal import evaluate_candidates_graph, minimal_k_decomp
from repro.decomposition.normal_form import complete_decomposition
from repro.hypergraph.generators import paper_q0_hypergraph
from repro.query.examples import q0
from repro.weights.library import lexicographic_taf, width_taf


def test_candidates_graph_construction(benchmark):
    hypergraph = paper_q0_hypergraph()
    graph = benchmark(lambda: CandidatesGraph(hypergraph, 2))
    assert graph.candidates


def test_candidates_graph_evaluation(benchmark):
    hypergraph = paper_q0_hypergraph()
    graph = CandidatesGraph(hypergraph, 2)
    taf = lexicographic_taf(hypergraph)
    result = benchmark(lambda: evaluate_candidates_graph(graph, taf))
    assert result.root_candidates


def test_minimal_k_decomp_q0(benchmark):
    hypergraph = paper_q0_hypergraph()
    hd = benchmark(lambda: minimal_k_decomp(hypergraph, 2, width_taf()))
    assert hd.width == 2


def test_hypertree_plan_execution_q0(benchmark):
    query = q0()
    database = uniform_database(query, tuples_per_relation=100, domain_size=8, seed=1)
    decomposition = complete_decomposition(optimal_decomposition(query.hypergraph()))

    def run():
        return execute_hypertree_plan(query, database, decomposition)

    result = benchmark(run)
    assert result.boolean in (True, False)
