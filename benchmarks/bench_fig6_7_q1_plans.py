"""Figs. 6 and 7 -- minimal weighted decompositions of Q1 and their estimated
costs for k = 2..5 (Section 6).

Regenerates: the estimated cost of the [cost_H(Q1), kNFD]-minimal plan for
each width bound, computed from the exact Fig. 5 statistics (the paper's
numbers 3 521 741 / 1 373 879 / 854 867 / 854 867 are reported alongside for
shape comparison -- absolute values depend on the cost model's constants).
Shape asserted: the estimated cost is non-increasing in k and plateaus once
the optimum is reached (the paper's k = 4 plateau).
"""

from conftest import emit

from repro.experiments.tables import fig6_7_experiment
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.examples import q1
from repro.workloads.paper_queries import fig5_statistics


def test_fig6_7_estimated_costs(benchmark):
    result = benchmark.pedantic(
        lambda: fig6_7_experiment(k_values=(2, 3, 4, 5)), rounds=1, iterations=1
    )
    emit(result)

    costs = result.column("estimated_cost")
    assert all(costs[i] >= costs[i + 1] - 1e-9 for i in range(len(costs) - 1))
    # Plateau: once the best width is reachable, a larger k changes nothing.
    assert costs[-2] == costs[-1]
    paper = result.column("paper_estimated_cost")
    assert paper == [3_521_741, 1_373_879, 854_867, 854_867]


def test_fig6_q1_width2_plan_structure(benchmark):
    """The k=2 plan of Fig. 6: a width-2 complete decomposition of Q1."""
    plan = benchmark.pedantic(
        lambda: cost_k_decomp(q1(), fig5_statistics(), 2), rounds=1, iterations=1
    )
    print()
    print(plan.describe())
    assert plan.width == 2
    assert plan.decomposition.is_complete()
    assert set(plan.decomposition.hypergraph.edge_names) == {
        atom.name for atom in q1().atoms
    }
