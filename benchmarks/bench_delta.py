"""Print a delta table over ``BENCH_core.json``.

For every benchmark (bench nodeid + params), compares its newest recorded
row against the most recent row from an *earlier* run session (sessions
are identified by the ``run`` tag the bench conftest stamps), so a CI job
that runs the benchmarks right after checkout shows, in its log, exactly
how the current commit moved each number relative to the committed
trajectory::

    python benchmarks/bench_delta.py

Exit status is always 0 -- the table is for eyeballs (CI perf gating on
shared runners would be noise); regressions are made *visible*, not fatal.
"""

from __future__ import annotations

import json
from pathlib import Path

BENCH_LOG_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def load_rows(path: Path = BENCH_LOG_PATH):
    try:
        rows = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    return rows if isinstance(rows, list) else []


def run_key(row) -> tuple:
    run = row.get("run") or {}
    return (run.get("timestamp", "?"), run.get("commit", "?"))


def bench_key(row) -> str:
    params = row.get("params") or {}
    if not params:
        return row.get("bench", "?")
    inner = ",".join(f"{k}={params[k]}" for k in sorted(params))
    return f"{row.get('bench', '?')}{{{inner}}}"


def delta_table(rows) -> str:
    if not rows:
        return "BENCH_core.json is empty or missing -- nothing to compare."
    history: dict = {}
    for row in rows:
        seconds = row.get("seconds")
        if isinstance(seconds, (int, float)):
            history.setdefault(bench_key(row), []).append((run_key(row), seconds))
    lines = [
        f"{'benchmark':<76} {'previous':>12} {'latest':>12} {'delta':>8}  previous run"
    ]
    for name in sorted(history):
        entries = history[name]
        latest_run, latest = entries[-1]
        previous = next(
            (
                (run, seconds)
                for run, seconds in reversed(entries)
                if run != latest_run
            ),
            None,
        )
        if previous is None:
            lines.append(f"{name:<76} {'-':>12} {latest:>12.3f} {'-':>8}  (new)")
            continue
        (previous_ts, _), previous_seconds = previous
        change = (latest - previous_seconds) / previous_seconds * 100.0
        lines.append(
            f"{name:<76} {previous_seconds:>12.3f} {latest:>12.3f} "
            f"{change:+7.1f}%  {previous_ts[:19]}"
        )
    lines.append(
        "(negative delta = faster than the previous recorded run; '(new)' = "
        "first measurement of this benchmark)"
    )
    return "\n".join(lines)


def main() -> int:
    print(delta_table(load_rows()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
