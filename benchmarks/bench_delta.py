"""Print a delta table over ``BENCH_core.json``.

For every benchmark (bench nodeid + params), compares its newest recorded
row against the most recent row from an *earlier* run session (sessions
are identified by the ``run`` tag the bench conftest stamps), so a CI job
that runs the benchmarks right after checkout shows, in its log, exactly
how the current commit moved each number relative to the committed
trajectory::

    python benchmarks/bench_delta.py

Rows whose ``extra`` carries a ``peak_rss_kb`` measurement (the
memory-bounded execution benches record it via ``resource.getrusage``)
get a peak-RSS column; note ``ru_maxrss`` is a process-lifetime high-water
mark, so within one session it can only grow -- it is an upper bound per
bench, meaningful across sessions.  Rows whose ``extra`` carries a
``qps`` measurement (the serving benches record sustained
queries/second) get a QPS column -- higher is better, unlike seconds.

``--bench PREFIX`` restricts the table to benchmarks whose key starts
with the prefix (e.g. ``--bench benchmarks/bench_storage.py`` prints only
the storage rows next to the CI storage step).  The run-session counting
ignores the filter, so a filtered view over a fresh benchmark still says
"(new)" rather than "nothing to compare".

Exit status is always 0 -- the table is for eyeballs (CI perf gating on
shared runners would be noise); regressions are made *visible*, not fatal.
With fewer than two recorded run sessions there is nothing to compare
yet, and the script says so instead of printing a table of ``(new)``
placeholders.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

BENCH_LOG_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def load_rows(path: Path = BENCH_LOG_PATH):
    try:
        rows = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    return rows if isinstance(rows, list) else []


def run_key(row) -> tuple:
    run = row.get("run") or {}
    return (run.get("timestamp", "?"), run.get("commit", "?"))


def bench_key(row) -> str:
    params = row.get("params") or {}
    if not params:
        return row.get("bench", "?")
    inner = ",".join(f"{k}={params[k]}" for k in sorted(params))
    return f"{row.get('bench', '?')}{{{inner}}}"


def peak_rss_kb(row):
    extra = row.get("extra") or {}
    value = extra.get("peak_rss_kb")
    return value if isinstance(value, (int, float)) else None


def _format_rss(value) -> str:
    return f"{value / 1024:.0f}M" if value is not None else "-"


def qps(row):
    extra = row.get("extra") or {}
    value = extra.get("qps")
    return value if isinstance(value, (int, float)) else None


def _format_qps(value) -> str:
    return f"{value:.1f}" if value is not None else "-"


def delta_table(rows, bench_filter: str | None = None) -> str:
    if not rows:
        return "BENCH_core.json is empty or missing -- nothing to compare."
    distinct_runs = {run_key(row) for row in rows}
    if len(distinct_runs) < 2:
        return (
            f"BENCH_core.json holds only {len(distinct_runs)} recorded run "
            "session -- a delta needs at least two.  Run the benchmarks "
            "(pytest benchmarks/) once more, or compare after the next "
            "commit's CI run."
        )
    history: dict = {}
    any_rss = False
    any_qps = False
    for row in rows:
        if bench_filter and not bench_key(row).startswith(bench_filter):
            continue
        seconds = row.get("seconds")
        if isinstance(seconds, (int, float)):
            rss = peak_rss_kb(row)
            throughput = qps(row)
            any_rss = any_rss or rss is not None
            any_qps = any_qps or throughput is not None
            history.setdefault(bench_key(row), []).append(
                (run_key(row), seconds, rss, throughput)
            )
    if not history:
        return (
            f"no recorded benchmark matches --bench {bench_filter!r} "
            "(keys are pytest nodeids, e.g. benchmarks/bench_storage.py)."
        )
    rss_header = f" {'peak RSS':>9}" if any_rss else ""
    qps_header = f" {'QPS':>8}" if any_qps else ""
    lines = [
        f"{'benchmark':<76} {'previous':>12} {'latest':>12} {'delta':>8}"
        f"{rss_header}{qps_header}  previous run"
    ]
    for name in sorted(history):
        entries = history[name]
        latest_run, latest, latest_rss, latest_qps = entries[-1]
        rss_cell = f" {_format_rss(latest_rss):>9}" if any_rss else ""
        qps_cell = f" {_format_qps(latest_qps):>8}" if any_qps else ""
        previous = next(
            (
                (run, seconds)
                for run, seconds, _, _ in reversed(entries)
                if run != latest_run
            ),
            None,
        )
        if previous is None:
            lines.append(
                f"{name:<76} {'-':>12} {latest:>12.3f} {'-':>8}"
                f"{rss_cell}{qps_cell}  (new)"
            )
            continue
        (previous_ts, _), previous_seconds = previous
        change = (latest - previous_seconds) / previous_seconds * 100.0
        lines.append(
            f"{name:<76} {previous_seconds:>12.3f} {latest:>12.3f} "
            f"{change:+7.1f}%{rss_cell}{qps_cell}  {previous_ts[:19]}"
        )
    lines.append(
        "(negative delta = faster than the previous recorded run; '(new)' = "
        "first measurement of this benchmark)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Print the newest-vs-previous delta table over BENCH_core.json"
    )
    parser.add_argument(
        "--bench",
        default=None,
        metavar="PREFIX",
        help="only show benchmarks whose key starts with this prefix "
        "(e.g. benchmarks/bench_storage.py)",
    )
    args = parser.parse_args(argv)
    print(delta_table(load_rows(), bench_filter=args.bench))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
