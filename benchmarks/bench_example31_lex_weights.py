"""Example 3.1 -- lexicographic weights of Q0's decompositions.

Regenerates: ω^lex(HD') = 4·9⁰ + 3·9¹ = 31, ω^lex(HD'') = 6·9⁰ + 1·9¹ = 15,
and the minimum lexicographic weight over kNFD (k = 2) found by
minimal-k-decomp.  Shape asserted: the paper's two worked values are
reproduced exactly and the algorithmic minimum is at most ω^lex(HD'').
"""

from conftest import emit

from repro.experiments.tables import example31_experiment


def test_example31_lexicographic_weights(benchmark):
    result = benchmark.pedantic(example31_experiment, rounds=1, iterations=1)
    emit(result)

    by_label = {row["decomposition"]: row for row in result.rows}
    assert by_label["HD'"]["weight"] == 31.0
    assert by_label["HD''"]["weight"] == 15.0
    assert all(row["matches_paper"] for row in result.rows)
