"""Fig. 8(B) -- Q2 and Q3: baseline vs cost-k-decomp (k = 3) absolute
evaluation measurements.

Regenerates: for each of the two additional benchmark queries, the evaluation
time/work of the best left-deep plan and of the cost-3-decomp plan over the
same randomly generated database.

Shape asserted (the paper's qualitative result): on both queries the
structural plan evaluates with significantly less work than the
quantitative-only plan (or the quantitative-only plan exceeds the evaluation
budget, the analogue of a timeout).
"""

from conftest import emit

from repro.experiments.fig8 import fig8b_experiment


def test_fig8b_q2_q3(benchmark):
    result = benchmark.pedantic(
        lambda: fig8b_experiment(
            tuples_per_relation=150, selectivity=40, k=3, seed=11, budget=5_000_000
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)

    by_query = {}
    for row in result.rows:
        by_query.setdefault(row["query"], {})[row["plan"]] = row

    for query_name, plans in by_query.items():
        baseline_row = next(v for k, v in plans.items() if "baseline" in k)
        structural_row = next(v for k, v in plans.items() if "decomp" in k)
        assert not structural_row["budget_exceeded"], query_name
        if baseline_row["budget_exceeded"]:
            # Timeout for the baseline already proves the point.
            continue
        assert structural_row["evaluation_work"] * 1.5 <= baseline_row["evaluation_work"], (
            f"{query_name}: expected the structural plan to do significantly "
            "less work than the left-deep plan"
        )
