"""Execution-engine benchmarks: the data-plane perf trajectory.

The decomposition side has tracked its perf trajectory in ``BENCH_core.json``
since PR 1; these benchmarks do the same for the execution side.  Each test
runs twice -- once on the row-based reference engine, once on the columnar
engine -- over *identical* data (same random stream), so every benchmark
session records an interleaved before/after pair:

* ``test_yannakakis_fig5_q1`` -- a fixed cost-3-decomp plan for Q1 over a
  Fig. 5-profile database, executed end to end (per-node expressions, both
  Yannakakis passes); planning is cached outside the timed region.
* ``test_fig8a_compare_sweep`` -- the full Fig. 8(A)-style planner
  comparison (baseline left-deep plan plus cost-k-decomp for k = 2..4),
  planned and executed.

Both also assert that the ``OperatorStats`` work counters are identical
across engines -- "evaluation work" is representation-blind, only the
seconds move.  The per-engine work counts and evaluation seconds are
attached to the ``BENCH_core.json`` rows via ``_bench_extra``.
"""

import pytest

from repro.planner.compare import compare_planners
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.examples import q1
from repro.workloads.paper_queries import fig5_database, fig8_database

#: Cached plans (planning is identical for both engines and excluded from
#: the Yannakakis timing) and cross-engine stats snapshots.
_PLANS = {}
_SNAPSHOTS = {}

ENGINES = ("rows", "columnar")


def _q1_fig5_plan(k: int, scale: float):
    key = (k, scale)
    if key not in _PLANS:
        statistics = fig5_database(seed=0, scale=scale, columnar=True).statistics
        _PLANS[key] = cost_k_decomp(q1(), statistics, k, completion="fresh")
    return _PLANS[key]


def _assert_cross_engine(bucket: str, engine: str, snapshot):
    """Record this engine's counters; once both engines ran, they must be
    byte-identical."""
    seen = _SNAPSHOTS.setdefault(bucket, {})
    seen[engine] = snapshot
    if len(seen) == len(ENGINES):
        assert seen["rows"] == seen["columnar"], (
            f"{bucket}: work counters differ between engines"
        )


@pytest.mark.parametrize("engine", ENGINES)
def test_yannakakis_fig5_q1(benchmark, engine, request):
    """Yannakakis execution of a fixed Q1 hypertree plan, Fig. 5 profile."""
    scale = 0.2
    columnar = engine == "columnar"
    plan = _q1_fig5_plan(k=3, scale=scale)
    database = fig5_database(seed=0, scale=scale, columnar=columnar)
    plan_ir = plan.to_ir()

    result = benchmark.pedantic(
        lambda: plan_ir.execute(database, budget=50_000_000),
        rounds=1,
        iterations=1,
    )

    assert result.boolean is True
    snapshot = result.stats.snapshot()
    _assert_cross_engine("yannakakis_fig5_q1", engine, snapshot)
    request.node._bench_extra = {
        "engine": engine,
        "evaluation_work": snapshot["total_work"],
    }


@pytest.mark.parametrize("engine", ENGINES)
def test_fig8a_compare_sweep(benchmark, engine, request):
    """Baseline vs cost-k-decomp (k = 2..4) for Q1: plan and execute both
    plan shapes on one engine."""
    columnar = engine == "columnar"
    database = fig8_database(
        q1(), tuples_per_relation=600, seed=3, columnar=columnar
    )

    report = benchmark.pedantic(
        lambda: compare_planners(
            q1(), database, k_values=(2, 3, 4), budget=20_000_000
        ),
        rounds=1,
        iterations=1,
    )

    assert not report.baseline.budget_exceeded
    assert len(report.structural) == 3
    works = {"baseline": report.baseline.evaluation_work}
    evaluation_seconds = report.baseline.evaluation_seconds
    for k, measurement in report.structural.items():
        assert not measurement.budget_exceeded
        assert measurement.answer_cardinality == report.baseline.answer_cardinality
        works[f"k={k}"] = measurement.evaluation_work
        evaluation_seconds += measurement.evaluation_seconds
    _assert_cross_engine("fig8a_compare_sweep", engine, works)
    request.node._bench_extra = {
        "engine": engine,
        "evaluation_seconds": round(evaluation_seconds, 6),
        **{f"work_{label}": work for label, work in works.items()},
    }
