"""Observability overhead pricing: tracing off vs metrics-only vs full spans.

Two scenarios, both asserting the write-only-sidecar contract twice over:

* ``test_q1_execution_trace_overhead`` -- the fig5-scale Q1 hypertree plan
  executed with no recorder vs a live :class:`TraceRecorder` (full
  per-operator span recording).  Answers and ``OperatorStats`` must stay
  byte-identical, and the traced run must stay within the span-recording
  overhead envelope.
* ``test_pool_batch_observability_overhead`` -- a 16-request batch through
  a 2-worker :class:`ServingPool` at three observability levels:
  everything off (``metrics=False``), metrics-only (the default registry),
  and full span recording (``trace=`` recorder, which also makes workers
  record and ship kernel spans).  Responses must match the serial oracle
  at every level.

Overhead envelopes: metrics-only < 5%, full span recording < 15% -- each
with an absolute slack term, because this container pins everything to one
CPU and sub-second measurements jitter by more than the relative budget.
Both tests contribute rows (off/metrics/traced seconds) to
``BENCH_core.json`` via ``request.node._bench_extra``.
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
import time
from pathlib import Path

from repro.db.database import Database
from repro.db.serving import (
    ServingPool,
    execute_payload,
    prewarm,
    strip_provenance,
)
from repro.obs.trace import TraceRecorder
from repro.planner.cost_k_decomp import cost_k_decomp
from repro.query.examples import q1
from repro.workloads.paper_queries import fig5_database

_SCRATCH = Path(tempfile.mkdtemp(prefix="repro-bench-obs-"))
atexit.register(shutil.rmtree, _SCRATCH, ignore_errors=True)
_STATE = {}

#: Executor scenario: repetitions per measurement (amortises fixed costs).
_EXEC_REPEATS = 3
#: Pool scenario: requests per batch.
_POOL_REQUESTS = 16

#: Overhead envelopes: relative factor + absolute slack (seconds).  The
#: relative budgets are the contract (metrics-only < 5%, full spans
#: < 15%); the absolute slack absorbs single-CPU scheduler jitter on
#: sub-second measurements.
_METRICS_FACTOR, _METRICS_SLACK = 1.05, 0.25
_TRACE_FACTOR, _TRACE_SLACK = 1.15, 0.25


def _q1_setup():
    if "q1" not in _STATE:
        database = fig5_database(seed=0, scale=0.2, columnar=True)
        plan = cost_k_decomp(q1(), database.statistics, 3, completion="fresh")
        _STATE["q1"] = (database, plan)
    return _STATE["q1"]


def _pool_setup():
    if "pool" not in _STATE:
        query = q1()
        database = fig5_database(seed=0, scale=0.2, columnar=True)
        store = _SCRATCH / "store"
        database.save(store)
        serving_db = Database.open(store)
        payloads = prewarm(serving_db, [query], k_values=(3,))
        batch = (payloads * _POOL_REQUESTS)[:_POOL_REQUESTS]
        oracle = [
            strip_provenance(execute_payload(payload, serving_db))
            for payload in batch
        ]
        _STATE["pool"] = (store, batch, oracle)
    return _STATE["pool"]


def test_q1_execution_trace_overhead(benchmark, request):
    """Full span recording on the Q1 hypertree plan: identical results,
    bounded slowdown."""
    database, plan = _q1_setup()
    ir = plan.to_ir()
    knobs = dict(budget=20_000_000)

    def run_off():
        return [ir.execute(database, **knobs) for _ in range(_EXEC_REPEATS)]

    started = time.perf_counter()
    off_results = benchmark.pedantic(run_off, rounds=1, iterations=1)
    off_seconds = time.perf_counter() - started

    recorder = TraceRecorder()
    started = time.perf_counter()
    traced_results = [
        ir.execute(database, trace=recorder, trace_id=f"req-{i}", **knobs)
        for i in range(_EXEC_REPEATS)
    ]
    traced_seconds = time.perf_counter() - started

    for off, traced in zip(off_results, traced_results):
        assert traced.boolean == off.boolean
        if off.relation is not None:
            assert traced.relation.rows == off.relation.rows
        assert traced.stats.snapshot() == off.stats.snapshot()
    spans_per_run = len(recorder) / _EXEC_REPEATS
    assert spans_per_run >= 1, "tracing must actually record spans"
    assert traced_seconds <= off_seconds * _TRACE_FACTOR + _TRACE_SLACK, (
        f"span recording cost {traced_seconds:.4f}s vs {off_seconds:.4f}s "
        f"untraced -- over the {_TRACE_FACTOR:.0%}+{_TRACE_SLACK}s envelope"
    )
    request.node._bench_extra = {
        "scenario": "q1_execute",
        "repeats": _EXEC_REPEATS,
        "off_seconds": round(off_seconds, 6),
        "traced_seconds": round(traced_seconds, 6),
        "overhead_ratio": round(traced_seconds / off_seconds, 4)
        if off_seconds > 0 else None,
        "spans_per_run": spans_per_run,
    }


def test_pool_batch_observability_overhead(benchmark, request):
    """16 requests through a 2-worker pool at three observability levels;
    every level byte-identical to the serial oracle."""
    store, batch, oracle = _pool_setup()

    def run_pool(**options):
        with ServingPool(store, workers=2, **options) as pool:
            started = time.perf_counter()
            responses = pool.run(batch)
            elapsed = time.perf_counter() - started
        assert [strip_provenance(r) for r in responses] == oracle
        return elapsed, responses

    started = time.perf_counter()
    (off_seconds, _), = (benchmark.pedantic(
        lambda: run_pool(metrics=False), rounds=1, iterations=1
    ),)
    metrics_seconds, _ = run_pool()  # default: live metrics, no tracing
    recorder = TraceRecorder()
    traced_seconds, traced_responses = run_pool(trace=recorder)

    assert all("trace" in r for r in traced_responses)
    span_names = {s.name for s in recorder.spans()}
    assert {"admission", "queue", "attempt", "execute"} <= span_names
    assert metrics_seconds <= off_seconds * _METRICS_FACTOR + _METRICS_SLACK, (
        f"metrics-only cost {metrics_seconds:.4f}s vs {off_seconds:.4f}s off "
        f"-- over the {_METRICS_FACTOR:.0%}+{_METRICS_SLACK}s envelope"
    )
    assert traced_seconds <= off_seconds * _TRACE_FACTOR + _TRACE_SLACK, (
        f"full tracing cost {traced_seconds:.4f}s vs {off_seconds:.4f}s off "
        f"-- over the {_TRACE_FACTOR:.0%}+{_TRACE_SLACK}s envelope"
    )
    request.node._bench_extra = {
        "scenario": "pool_batch",
        "requests": len(batch),
        "workers": 2,
        "off_seconds": round(off_seconds, 6),
        "metrics_seconds": round(metrics_seconds, 6),
        "traced_seconds": round(traced_seconds, 6),
        "metrics_ratio": round(metrics_seconds / off_seconds, 4)
        if off_seconds > 0 else None,
        "traced_ratio": round(traced_seconds / off_seconds, 4)
        if off_seconds > 0 else None,
        "spans": len(recorder),
    }
