"""Theorems 3.3 and 5.1 -- the hardness reductions, exercised empirically.

Regenerates: the table of small yes/no instances for the 3-colourability
reduction (minimal join-tree weight 0 iff colourable) and for the acyclic-BCQ
reduction (minimal NF-decomposition weight 0 iff the query is true).

Shape asserted: every instance is classified consistently with the ground
truth, which is the behavioural content of the two reductions.
"""

from conftest import emit

from repro.experiments.ablation import hardness_reduction_experiment


def test_hardness_reductions(benchmark):
    result = benchmark.pedantic(hardness_reduction_experiment, rounds=1, iterations=1)
    emit(result)
    assert all(row["consistent"] for row in result.rows)
    reductions = {row["reduction"] for row in result.rows}
    assert len(reductions) == 2
