"""Ablation -- the normal-form restriction (Sections 3-4).

The paper regains tractability by restricting the search space from all
width-k decompositions to the normal-form ones.  This benchmark regenerates
the ablation table: for a set of small hypergraphs it enumerates the NF
decompositions exhaustively, checks that they are all valid and in normal
form, and compares the brute-force minimum of the lexicographic TAF with the
weight computed by minimal-k-decomp.

Shape asserted: minimal-k-decomp's weight equals (or is bounded by, when the
enumeration cap is hit) the brute-force minimum -- the operational content of
Theorem 4.4.
"""

from conftest import emit

from repro.experiments.ablation import nf_restriction_ablation


def test_nf_restriction_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: nf_restriction_ablation(limit=3000), rounds=1, iterations=1
    )
    emit(result)
    assert all(row["all_valid"] for row in result.rows)
    assert all(row["all_normal_form"] for row in result.rows)
    assert all(row["agreement"] for row in result.rows)
