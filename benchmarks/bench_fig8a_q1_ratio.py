"""Fig. 8(A) -- Q1: cost-k-decomp vs the quantitative-only baseline, k = 2..5.

Regenerates: for every width bound k, the planning time, the estimated plan
cost, the evaluation work of the executed plan, and the baseline/structural
ratios (both work-only and total-time, the latter including the plan-
computation overhead that produces the paper's rise-then-fall shape).

Shape asserted:
* the structural plan's evaluation work is non-increasing as k grows (a
  larger search space can only produce better plans), and
* the total-time ratio does not keep improving at the largest k -- the
  plan-computation overhead eventually dominates, which is the paper's
  motivation for recommending a moderate k (≈ 4 for queries of this size).

The absolute level of the ratio is discussed in EXPERIMENTS.md: the paper's
baseline is a 2004 commercial DBMS, ours is an idealised in-memory left-deep
optimiser with exact statistics, which is considerably harder to beat.
"""

from conftest import emit

from repro.experiments.fig8 import fig8a_experiment


def test_fig8a_q1_ratio_over_k(benchmark):
    result = benchmark.pedantic(
        lambda: fig8a_experiment(
            tuples_per_relation=150, k_values=(2, 3, 4, 5), seed=3, budget=5_000_000
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)

    structural_rows = [row for row in result.rows if row["k"] is not None]
    assert len(structural_rows) >= 3

    work = [row["evaluation_work"] for row in structural_rows]
    assert all(work[i] >= work[i + 1] - 1e-9 for i in range(len(work) - 1)), (
        "structural evaluation work should not increase with k"
    )

    # Rise-then-fall of the total-time ratio: the best k is an interior one
    # (not the largest), because planning cost grows with k.
    ratios = [row["total_time_ratio"] for row in structural_rows]
    best_index = max(range(len(ratios)), key=lambda i: ratios[i])
    assert best_index < len(ratios) - 1 or len(ratios) == 1
