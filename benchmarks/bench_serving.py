"""Serving-plane benchmarks: sustained QPS, serial in-process vs the
multi-process worker pool.

Interleaved measurement groups recorded as rows in ``BENCH_core.json``
(print them alone with
``python benchmarks/bench_delta.py --bench benchmarks/bench_serving.py``):

* ``test_sustained_qps`` -- the same warm plan-replay request batch served
  three ways: ``serial_1proc`` (the in-process oracle loop, no pool, no
  IPC), ``pool_2proc`` and ``pool_4proc`` (the :class:`ServingPool` with
  2 / 4 worker processes sharing the one stored copy via ``np.memmap``).
  Every pooled response must be byte-identical to the serial oracle's,
  every payload must replay at ``planning_seconds == 0.0``, and every
  worker must report **all** of its columns as mmap views of the store --
  shared pages, not pickled copies (asserted from the workers' own store
  reports, which also carry the catalog digest all workers must agree
  on).  Wall-clock speedup is reported, not gated: this container is
  single-CPU, so the pool pays IPC overhead without gaining cores;
  multi-core machines show the parallel effect.
* ``test_admission_under_pressure`` -- the same batch forced through a
  1-slice global memory budget: every request still completes (admission
  degrades to queuing, never to failure), responses stay byte-identical
  to the serial oracle under the same per-query budget, and the row
  reports the elapsed/QPS cost of serialising.
* ``test_qps_under_worker_crashes`` -- the same batch served while a
  scripted :class:`~repro.db.faults.FaultPlan` kills a worker mid-request
  twice: responses stay byte-identical, the supervisor restarts both
  victims, and the row reports the QPS cost of crash recovery next to the
  fault-free ``pool_2proc`` row.
* ``test_daemon_qps`` -- the same batch driven through a
  :class:`~repro.db.daemon.ServingDaemon` over its Unix socket
  (``daemon_1client`` serially on one connection, ``daemon_4client``
  split across four concurrent connections): responses stay
  byte-identical over the wire, and the rows price the socket +
  JSON-framing hop against the in-process ``pool_2proc`` row.

Pooled responses carry a scheduling-dependent ``"serving"`` provenance
block (attempts/restarts); oracle comparisons strip it first.
"""

import atexit
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from repro.db.database import Database
from repro.db.serving import (
    ServingPool,
    execute_payload,
    prewarm,
    strip_provenance,
)
from repro.db.storage import PlanCache
from repro.query.conjunctive import build_query
from repro.workloads.synthetic import workload_database

_SCRATCH = Path(tempfile.mkdtemp(prefix="repro-bench-serving-"))
atexit.register(shutil.rmtree, _SCRATCH, ignore_errors=True)
_STATE = {}
_BUCKETS = {}

SERVE_MODES = ("serial_1proc", "pool_2proc", "pool_4proc")
_WORKERS = {"serial_1proc": 0, "pool_2proc": 2, "pool_4proc": 4}

#: Requests per measured batch: the prewarmed query set, repeated.
_REPEAT = 8


def _serving_query():
    body = [(f"r{i}", [f"X{i}", f"X{(i + 1) % 6}"]) for i in range(6)]
    return build_query(body, output_variables=["X0", "X3"], name="cycle6")


def _setup():
    """One stored workload + twice-prewarmed payloads (the second prewarm
    replays the plan cache, so the served batch is pure plan replay)."""
    if "store" not in _STATE:
        query = _serving_query()
        database = workload_database(
            query, tuples_per_relation=400, domain_size=20, seed=13
        )
        store = _SCRATCH / "store"
        database.save(store)
        serving_db = Database.open(store)
        cache = PlanCache(_SCRATCH / "plans")
        prewarm(serving_db, [query], k_values=(2, 3), plan_cache=cache)
        payloads = prewarm(
            serving_db, [query], k_values=(2, 3), plan_cache=cache,
            answer="digest",
        )
        assert all(p["planning_seconds"] == 0.0 for p in payloads), (
            "steady-state serving must be pure plan replay"
        )
        batch = payloads * _REPEAT
        oracle = [execute_payload(p, serving_db) for p in batch]
        _STATE["store"] = (store, serving_db, batch, oracle)
    return _STATE["store"]


def _assert_mmap_shared(pool: ServingPool) -> int:
    """Every worker must hold every column as a read-only mmap view of the
    one stored copy -- the property that makes N processes ~1x memory."""
    digests = set()
    mmap_columns = 0
    for report in pool.worker_reports.values():
        digests.add(report["store_digest"])
        assert report["total_columns"] > 0
        assert report["mmap_columns"] == report["total_columns"], (
            f"worker {report['pid']} materialised "
            f"{report['total_columns'] - report['mmap_columns']} columns "
            "instead of mmap-sharing them"
        )
        mmap_columns += report["mmap_columns"]
    assert len(digests) == 1, "workers must open the identical store"
    return mmap_columns


@pytest.mark.parametrize("mode", SERVE_MODES)
def test_sustained_qps(benchmark, mode, request):
    """Warm plan-replay batch: in-process loop vs 2- and 4-worker pools."""
    store, serving_db, batch, oracle = _setup()
    workers = _WORKERS[mode]

    if workers == 0:
        def serve():
            return [execute_payload(payload, serving_db) for payload in batch]

        started = time.perf_counter()
        responses = benchmark.pedantic(serve, rounds=1, iterations=1)
        elapsed = time.perf_counter() - started
        mmap_columns = None
    else:
        with ServingPool(store, workers=workers) as pool:
            mmap_columns = _assert_mmap_shared(pool)
            started = time.perf_counter()
            responses = benchmark.pedantic(
                lambda: pool.run(batch), rounds=1, iterations=1
            )
            elapsed = time.perf_counter() - started

    if workers:
        responses = [strip_provenance(r) for r in responses]
    assert responses == oracle, (
        f"{mode} responses must be byte-identical to the serial oracle"
    )
    qps = len(batch) / elapsed if elapsed > 0 else 0.0
    seen = _BUCKETS.setdefault("qps", {})
    seen[mode] = {"seconds": elapsed, "qps": qps}
    request.node._bench_extra = {
        "mode": mode,
        "workers": workers,
        "requests": len(batch),
        "seconds": round(elapsed, 6),
        "qps": round(qps, 2),
        "mmap_columns": mmap_columns,
        "planning_seconds": 0.0,
    }


def test_admission_under_pressure(benchmark, request):
    """A global budget of exactly one slice: requests serialise through
    admission (queuing, not failure) and answers stay byte-identical."""
    store, serving_db, batch, _ = _setup()
    slice_bytes = 1 << 18
    bounded = [dict(p, memory_budget_bytes=slice_bytes) for p in batch]
    oracle = [execute_payload(p, serving_db) for p in bounded]

    with ServingPool(
        store,
        workers=2,
        global_memory_budget_bytes=slice_bytes,
        default_memory_budget_bytes=slice_bytes,
    ) as pool:
        _assert_mmap_shared(pool)
        started = time.perf_counter()
        responses = benchmark.pedantic(
            lambda: pool.run(bounded), rounds=1, iterations=1
        )
        elapsed = time.perf_counter() - started

    assert [strip_provenance(r) for r in responses] == oracle, (
        "budget-admitted responses must match the serial oracle under the "
        "same per-query budget"
    )
    qps = len(bounded) / elapsed if elapsed > 0 else 0.0
    request.node._bench_extra = {
        "mode": "pool_2proc_budget",
        "workers": 2,
        "requests": len(bounded),
        "seconds": round(elapsed, 6),
        "qps": round(qps, 2),
        "global_memory_budget_bytes": slice_bytes,
        "memory_budget_bytes": slice_bytes,
    }


def test_qps_under_worker_crashes(benchmark, request):
    """The warm batch served while a scripted fault plan kills a worker
    mid-request twice: the supervisor requeues both crash-lost requests
    and respawns both victims, responses stay byte-identical to the serial
    oracle, and the row prices crash recovery against the fault-free
    ``pool_2proc`` row."""
    store, serving_db, batch, oracle = _setup()
    kill_at = [len(batch) // 3, (2 * len(batch)) // 3]
    plan = [{"kind": "worker_exit", "request_index": rid} for rid in kill_at]

    with ServingPool(
        store, workers=2, max_worker_restarts=4, fault_plan=plan
    ) as pool:
        _assert_mmap_shared(pool)
        started = time.perf_counter()
        responses = benchmark.pedantic(
            lambda: pool.run(batch), rounds=1, iterations=1
        )
        elapsed = time.perf_counter() - started
        restarts = pool.restarts
        degraded = pool.degraded

    assert [strip_provenance(r) for r in responses] == oracle, (
        "responses under injected worker crashes must match the serial "
        "oracle"
    )
    assert restarts >= 2, (
        f"both scripted kills must have fired and been absorbed "
        f"(restarts={restarts})"
    )
    assert degraded is None, "two restarts must fit a budget of four"
    retried = sum(
        1 for r in responses if r["serving"]["attempts"] > 1
    )
    qps = len(batch) / elapsed if elapsed > 0 else 0.0
    request.node._bench_extra = {
        "mode": "pool_2proc_faults",
        "workers": 2,
        "requests": len(batch),
        "seconds": round(elapsed, 6),
        "qps": round(qps, 2),
        "worker_kills": len(kill_at),
        "restarts": restarts,
        "retried_requests": retried,
    }


@pytest.mark.parametrize("clients", [1, 4])
def test_daemon_qps(benchmark, clients, request):
    """The warm batch through the socket daemon: the price of the
    length-prefixed JSON hop, serially and across concurrent clients."""
    from repro.db.daemon import DaemonClient, ServingDaemon

    store, serving_db, batch, oracle = _setup()
    sock = _SCRATCH / f"daemon-{clients}.sock"

    with ServingDaemon(store, f"unix:{sock}", workers=2) as daemon:
        if clients == 1:
            with DaemonClient(daemon.address) as client:
                started = time.perf_counter()
                responses = benchmark.pedantic(
                    lambda: [client.execute(p) for p in batch],
                    rounds=1, iterations=1,
                )
                elapsed = time.perf_counter() - started
        else:
            shards = [batch[slot::clients] for slot in range(clients)]
            results = [None] * clients

            def drive(slot):
                with DaemonClient(daemon.address) as client:
                    results[slot] = [client.execute(p) for p in shards[slot]]

            def serve_concurrently():
                import threading

                threads = [
                    threading.Thread(target=drive, args=(slot,))
                    for slot in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                merged = [None] * len(batch)
                for slot, shard in enumerate(results):
                    merged[slot::clients] = shard
                return merged

            started = time.perf_counter()
            responses = benchmark.pedantic(
                serve_concurrently, rounds=1, iterations=1
            )
            elapsed = time.perf_counter() - started
        # The dispatcher bumps requests_served *after* writing the reply,
        # so a client can observe its response a beat before the counter
        # lands: poll briefly instead of racing it.
        with DaemonClient(daemon.address) as client:
            deadline = time.monotonic() + 5.0
            while True:
                health = client.health()
                if health["counters"]["requests_served"] >= len(batch):
                    break
                assert time.monotonic() < deadline, health["counters"]
                time.sleep(0.05)

    assert [strip_provenance(r) for r in responses] == oracle, (
        "daemon responses must be byte-identical to the serial oracle"
    )
    assert health["restarts"] == 0
    qps = len(batch) / elapsed if elapsed > 0 else 0.0
    request.node._bench_extra = {
        "mode": f"daemon_{clients}client",
        "workers": 2,
        "clients": clients,
        "requests": len(batch),
        "seconds": round(elapsed, 6),
        "qps": round(qps, 2),
        "transport": "unix-socket json frames",
    }
