"""Decomposition-plane benchmarks: the search-side perf trajectory.

PR 2 gave the execution side engine-interleaved benchmarks; these do the
same for the paper's search side.  Each test runs its workload on both
engines *alternately within one test* -- scalar big-int loops vs the
vectorised mask-matrix kernels (or fresh-per-k constructions vs the
k-incremental family) -- over the identical, equally-warm graphs, asserts
the outputs are byte-identical, and attaches the per-engine best-of-N
seconds and the speedup to the ``BENCH_core.json`` row via
``_bench_extra``:

* ``test_candidates_graph_construction_plane`` -- one big grid-query
  candidates graph (the Theorem 4.5 build phase), scalar vs vectorised;
* ``test_candidates_graph_evaluation_plane`` -- the evaluation fold over a
  snowflake-query graph with a mask-space TAF, scalar vs array fold;
* ``test_k_sweep_incremental`` -- the Fig. 8(A)-style k = 2..5 graph sweep
  over Q1's planning hypergraph, fresh scalar constructions vs the
  vectorised :class:`CandidatesGraphFamily` (``extend_to`` reuse).
"""

import time

from repro.decomposition.candidates import CandidatesGraph, CandidatesGraphFamily
from repro.decomposition.minimal import evaluate_candidates_graph
from repro.hypergraph.generators import grid_hypergraph
from repro.query.examples import q1
from repro.weights.library import lexicographic_taf
from repro.workloads.synthetic import snowflake_query


def _interleaved(label_a, run_a, label_b, run_b, rounds=2):
    """Run two thunks alternately ``rounds`` times; return their last
    results and a ``{label: best seconds}`` timing dict."""
    timings = {label_a: [], label_b: []}
    results = {}
    for _ in range(rounds):
        for label, thunk in ((label_a, run_a), (label_b, run_b)):
            started = time.perf_counter()
            results[label] = thunk()
            timings[label].append(time.perf_counter() - started)
    return results, {label: min(times) for label, times in timings.items()}


def _graph_fingerprint(graph: CandidatesGraph):
    """Byte-identity proxy: all counts plus the exact node/arc arrays."""
    return (
        graph.size_report(),
        tuple(graph.cand_lambda),
        tuple(graph.cand_chi),
        tuple(graph.cand_comp),
        tuple(graph.cand_subs),
        tuple(graph.sub_solvers),
        tuple(graph.sub_order),
    )


def test_candidates_graph_construction_plane(benchmark, request):
    """Build phase on a 4x4 grid query at k=3 (Ψ=2324, ~3M candidates):
    per-component Ψ-length loops vs whole-array mask-matrix kernels."""
    hypergraph = grid_hypergraph(4, 4)
    hypergraph.bitset()  # one shared component memo: both engines equally warm

    def build(vectorized):
        return CandidatesGraph(hypergraph, 3, vectorized=vectorized)

    def run():
        return _interleaved(
            "scalar", lambda: build(False), "vectorized", lambda: build(True)
        )

    results, seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    scalar_graph, dense_graph = results["scalar"], results["vectorized"]
    assert scalar_graph.size_report()["candidates"] > 1_000_000
    assert _graph_fingerprint(scalar_graph) == _graph_fingerprint(dense_graph)
    speedup = seconds["scalar"] / seconds["vectorized"]
    request.node._bench_extra = {
        "scalar_s": round(seconds["scalar"], 6),
        "vectorized_s": round(seconds["vectorized"], 6),
        "speedup": round(speedup, 3),
        **scalar_graph.size_report(),
    }


def test_candidates_graph_evaluation_plane(benchmark, request):
    """Evaluation fold (mask-space lexicographic TAF) on a snowflake-query
    graph at k=3 (~185k candidates over ~4.6k subproblems): scalar per-arc
    loop vs per-subproblem numpy reductions."""
    hypergraph = snowflake_query(6, 3).hypergraph()
    graph = CandidatesGraph(hypergraph, 3)
    taf = lexicographic_taf(hypergraph)

    def run():
        return _interleaved(
            "scalar",
            lambda: evaluate_candidates_graph(graph, taf, vectorized=False),
            "vectorized",
            lambda: evaluate_candidates_graph(graph, taf, vectorized=True),
        )

    results, seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    scalar_result = results["scalar"]
    dense_result = results["vectorized"]
    assert scalar_result.root_survivor_ids
    assert tuple(map(float, scalar_result.weight_by_id)) == tuple(
        dense_result.weight_by_id
    )
    assert bytes(scalar_result.removed) == bytes(dense_result.removed)
    assert scalar_result.survivors_by_sub == dense_result.survivors_by_sub
    request.node._bench_extra = {
        "scalar_s": round(seconds["scalar"], 6),
        "vectorized_s": round(seconds["vectorized"], 6),
        "speedup": round(seconds["scalar"] / seconds["vectorized"], 3),
        "candidates": graph.num_candidates,
        "minimum_weight": float(scalar_result.minimum_weight()),
    }


def test_k_sweep_incremental(benchmark, request):
    """The fig8a-style k = 2..5 candidates-graph sweep over Q1's planning
    hypergraph: four fresh scalar builds vs the k-incremental family."""
    hypergraph = q1().with_fresh_head_variables().hypergraph()
    hypergraph.bitset()
    k_values = (2, 3, 4, 5)

    def fresh_sweep():
        return [
            CandidatesGraph(hypergraph, k, vectorized=False) for k in k_values
        ]

    def family_sweep():
        family = CandidatesGraphFamily(hypergraph)
        return [family.graph(k) for k in k_values]

    def run():
        return _interleaved("fresh", fresh_sweep, "family", family_sweep)

    results, seconds = benchmark.pedantic(run, rounds=1, iterations=1)

    fresh_graphs, family_graphs = results["fresh"], results["family"]
    for fresh_graph, family_graph in zip(fresh_graphs, family_graphs):
        assert _graph_fingerprint(fresh_graph) == _graph_fingerprint(family_graph)
    request.node._bench_extra = {
        "fresh_s": round(seconds["fresh"], 6),
        "family_s": round(seconds["family"], 6),
        "speedup": round(seconds["fresh"] / seconds["family"], 3),
        "total_candidates": sum(graph.num_candidates for graph in fresh_graphs),
    }
