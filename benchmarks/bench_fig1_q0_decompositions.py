"""Fig. 1 -- H(Q0) and its width-2 hypertree decompositions.

Regenerates: the hypertree width of the introductory example Q0 and the two
width-2 decompositions HD'/HD'' shown in Fig. 1 (reconstructed from their
reported width histograms), plus the decomposition computed by k-decomp.
Shape asserted: hw(H(Q0)) = 2 and all three decompositions are valid width-2
hypertrees.
"""

from conftest import emit

from repro.experiments.tables import fig1_experiment


def test_fig1_q0_decompositions(benchmark):
    result = benchmark.pedantic(fig1_experiment, rounds=1, iterations=1)
    emit(result)

    rows = {row["object"]: row for row in result.rows}
    assert rows["H(Q0)"]["hypertree_width"] == 2
    for label, row in rows.items():
        if label == "H(Q0)":
            continue
        assert row["width"] == 2
        assert row["valid"] is True
