"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that legacy editable installs (``pip install -e . --no-use-pep517``)
work on environments that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
